//! Explicit teleportation-chain circuits (paper Fig. 6d/6e).
//!
//! [`swap_extra_depth`](crate::swap_extra_depth) and
//! [`teleport_extra_depth`](crate::teleport_extra_depth) use closed-form
//! per-hop constants; this module *derives* those constants by emitting
//! the actual circuits and scheduling them:
//!
//! * [`swap_chain`] — Fig. 6d: shuttle a qubit across `d` cells with
//!   nearest-neighbor SWAPs. Scheduled depth grows linearly in `d`.
//! * [`teleport_chain`] — Fig. 6e: entanglement swapping. All EPR pairs
//!   on the routing cells are prepared **in parallel** (H + CX each), all
//!   Bell-state measurements happen in parallel (CX + H), and the
//!   byproduct correction is a single conditional Pauli at the far end —
//!   scheduled depth is **constant in `d`**, which is the whole point of
//!   Sec. 4.3.
//!
//! These circuits contain `H` and are therefore *not* simulable by the
//! Feynman-path engine (measurement-based teleportation is outside the
//! classical-reversible family); they exist for depth/resource
//! accounting, exactly as the paper uses them.

use qram_circuit::{Circuit, Gate, Qubit};

/// Fig. 6d: move the state at qubit 0 to qubit `d` along a line of
/// `d + 1` qubits using `d` nearest-neighbor SWAPs.
///
/// ```
/// use qram_layout::swap_chain;
/// let c = swap_chain(5);
/// assert_eq!(c.num_qubits(), 6);
/// assert_eq!(c.schedule().depth(), 5); // linear in distance
/// ```
pub fn swap_chain(d: usize) -> Circuit {
    let mut c = Circuit::new(d + 1);
    for i in 0..d {
        c.push(Gate::swap(Qubit(i as u32), Qubit(i as u32 + 1)));
    }
    c
}

/// Fig. 6e: teleport the state at qubit 0 to qubit `2h` across `h`
/// entanglement-swapping hops (`2h + 1` qubits: the source, `h − 1`
/// intermediate EPR-half pairs, and the target pair).
///
/// Layout on the wire: qubit 0 is the payload; qubits `2i−1, 2i` for
/// `i = 1..h` are the `i`-th EPR pair, whose second half sits adjacent to
/// the next pair. The emitted stages:
///
/// 1. EPR preparation on every pair — `H(2i−1); CX(2i−1, 2i)` — all
///    pairs in parallel (depth 2).
/// 2. Bell measurement basis rotation at every junction —
///    `CX(2i−2, 2i−1); H(2i−2)` — all junctions in parallel (depth 2).
/// 3. Byproduct correction on the target: one X and one Z (classically
///    controlled on the measurement outcomes in hardware; emitted
///    unconditionally here for depth accounting — depth 2).
///
/// Total scheduled depth is 4 **regardless of `h`** (the three stages
/// overlap under ASAP scheduling) — the `O(1)` routing step of Sec. 4.3.
///
/// ```
/// use qram_layout::teleport_chain;
/// assert_eq!(teleport_chain(1).schedule().depth(), teleport_chain(20).schedule().depth());
/// ```
///
/// # Panics
///
/// Panics if `h == 0`.
pub fn teleport_chain(h: usize) -> Circuit {
    assert!(h >= 1, "teleportation needs at least one hop");
    let n = 2 * h + 1;
    let mut c = Circuit::new(n);
    let q = |i: usize| Qubit(i as u32);

    // Stage 1: all EPR pairs in parallel.
    for i in 1..=h {
        c.push(Gate::H(q(2 * i - 1)));
    }
    for i in 1..=h {
        c.push(Gate::cx(q(2 * i - 1), q(2 * i)));
    }
    // Stage 2: all Bell measurements in parallel.
    for i in 1..=h {
        c.push(Gate::cx(q(2 * i - 2), q(2 * i - 1)));
    }
    for i in 1..=h {
        c.push(Gate::H(q(2 * i - 2)));
    }
    // Stage 3: byproduct corrections on the target.
    c.push(Gate::x(q(n - 1)));
    c.push(Gate::z(q(n - 1)));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_circuit::resources::ResourceCount;

    #[test]
    fn swap_chain_depth_is_linear() {
        for d in 1..=12 {
            assert_eq!(swap_chain(d).schedule().depth(), d);
        }
    }

    #[test]
    fn teleport_chain_depth_is_constant() {
        let depths: Vec<usize> = (1..=12)
            .map(|h| teleport_chain(h).schedule().depth())
            .collect();
        assert!(depths.windows(2).all(|w| w[0] == w[1]), "{depths:?}");
        assert_eq!(depths[0], 4);
    }

    #[test]
    fn crossover_matches_cost_model_constants() {
        // The closed-form constants in `routing`: a SWAP chain costs
        // SWAP_DEPTH per hop once lowered to CX; teleportation costs a
        // constant. Check the lowered-depth crossover is at small d.
        let swap_lowered = ResourceCount::of(&swap_chain(4)).lowered_depth;
        let tele_lowered = ResourceCount::of(&teleport_chain(4)).lowered_depth;
        assert!(
            swap_lowered > tele_lowered,
            "swap {swap_lowered} vs teleport {tele_lowered}"
        );
        // And at distance 1 swapping is cheaper (no entanglement setup).
        let swap1 = ResourceCount::of(&swap_chain(1)).lowered_depth;
        let tele1 = ResourceCount::of(&teleport_chain(1)).lowered_depth;
        assert!(swap1 < tele1);
    }

    #[test]
    fn teleport_chain_qubit_budget() {
        // 2 ancillae per hop minus the shared target: 2h + 1 qubits, the
        // routing cells the H-tree embedding reserves on each edge path.
        for h in 1..=6 {
            assert_eq!(teleport_chain(h).num_qubits(), 2 * h + 1);
        }
    }

    #[test]
    fn teleport_gates_scale_linearly_but_in_parallel() {
        let c = teleport_chain(10);
        // 2 gates per pair + 2 per junction + 2 corrections.
        assert_eq!(c.len(), 4 * 10 + 2);
        assert!(c.schedule().max_parallelism() >= 10);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hops_rejected() {
        let _ = teleport_chain(0);
    }
}
