//! Constructive H-tree embedding of the QRAM router tree into a 2D grid
//! (paper Sec. 4.2, Fig. 6).
//!
//! The QRAM tree for address width `m` is a complete binary tree with
//! `2^m − 1` router nodes and `2^m` data leaves. This module embeds it
//! into a nearest-neighbor grid as a **topological minor**: every tree
//! node occupies a distinct cell, every tree edge maps to a path of
//! dedicated *routing* cells, and no two edge paths share a cell. The
//! topological-minor property is what enables teleportation-based routing
//! (Sec. 4.3): the routing cells on an edge path carry no logical
//! information, so they can hold EPR pairs.
//!
//! The construction is the classical H-tree recursion of VLSI layout
//! (Browning 1980): the base case embeds the capacity-4 tree in a 3×3
//! grid (Fig. 6a) and the recursive case composes four quadrant trees with
//! a fresh root cross-bar, doubling the side (Fig. 6b). Even address
//! widths fill a square of side `2^(m/2+1) − 1`; odd widths use the
//! half-grid rectangle the paper describes.

use crate::Grid;

/// What a grid cell holds in an H-tree embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellRole {
    /// A QRAM router node (internal tree node).
    Router,
    /// A data leaf (one per classical memory cell).
    Data,
    /// A routing ancilla on a tree-edge path (teleportation medium).
    Routing,
    /// Not used by the embedding (25 % of cells asymptotically, Sec. 7.2).
    Unused,
}

/// Census of cell roles in an embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoleCensus {
    /// Router cells (`2^m − 1`).
    pub routers: usize,
    /// Data cells (`2^m`).
    pub data: usize,
    /// Routing (teleportation ancilla) cells.
    pub routing: usize,
    /// Unused cells.
    pub unused: usize,
}

/// Violations of the topological-minor invariants, returned by
/// [`HTreeEmbedding::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// Two tree entities (nodes or edge paths) occupy the same cell.
    CellReused {
        /// The contested cell.
        cell: (usize, usize),
    },
    /// An edge path is not a chain of adjacent cells linking its
    /// endpoints.
    BrokenPath {
        /// Human-readable description of the offending edge.
        edge: String,
    },
    /// A path cell does not have the `Routing` role.
    WrongRole {
        /// The offending cell.
        cell: (usize, usize),
    },
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::CellReused { cell } => write!(f, "cell {cell:?} used twice"),
            EmbeddingError::BrokenPath { edge } => write!(f, "edge path broken: {edge}"),
            EmbeddingError::WrongRole { cell } => {
                write!(f, "path cell {cell:?} does not have the routing role")
            }
        }
    }
}

impl std::error::Error for EmbeddingError {}

/// An embedding of the address-width-`m` QRAM tree into a 2D grid.
///
/// Routers are addressed by *heap index* (1 = root, node `i` has children
/// `2i` and `2i+1`; `2^m − 1` routers total). Leaves are addressed by
/// memory address `0 ..= 2^m − 1`, left to right.
///
/// ```
/// use qram_layout::{CellRole, HTreeEmbedding};
///
/// let e = HTreeEmbedding::new(4);
/// assert_eq!(e.rows(), 7);
/// assert_eq!(e.cols(), 7);
/// assert_eq!(e.role_census().routers, 15);
/// assert_eq!(e.role_census().data, 16);
/// e.validate().expect("topological minor invariants hold");
/// ```
#[derive(Debug, Clone)]
pub struct HTreeEmbedding {
    m: usize,
    rows: usize,
    cols: usize,
    roles: Vec<CellRole>,
    /// `router_pos[i - 1]` = cell of heap node `i`.
    router_pos: Vec<(usize, usize)>,
    /// `leaf_pos[a]` = cell of the leaf for address `a`.
    leaf_pos: Vec<(usize, usize)>,
    /// `router_edge_paths[i - 2]` = intermediate routing cells on the path
    /// from `parent(i)` to router `i`, parent-first. Empty = adjacent.
    router_edge_paths: Vec<Vec<(usize, usize)>>,
    /// `leaf_edge_paths[a]` = intermediate cells from the leaf's parent
    /// router to the leaf.
    leaf_edge_paths: Vec<Vec<(usize, usize)>>,
    /// Routing cells from the root to the grid border (root-first); the
    /// access port used when this embedding becomes a quadrant of a larger
    /// one, and by the bus/address qubits entering the tree.
    port_path: Vec<(usize, usize)>,
}

impl HTreeEmbedding {
    /// Builds the embedding for address width `m` (memory capacity `2^m`).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "address width must be at least 1");
        let mut e = match m {
            1 => Self::base_m1(),
            2 => Self::base_m2(),
            _ if m.is_multiple_of(2) => Self::compose_even(Self::new(m - 2)),
            _ => Self::compose_odd(Self::new(m - 1)),
        };
        e.mark_roles();
        e
    }

    /// The 3×1 embedding of the single-router tree.
    fn base_m1() -> Self {
        HTreeEmbedding {
            m: 1,
            rows: 3,
            cols: 1,
            roles: Vec::new(),
            router_pos: vec![(1, 0)],
            leaf_pos: vec![(0, 0), (2, 0)],
            router_edge_paths: Vec::new(),
            leaf_edge_paths: vec![Vec::new(), Vec::new()],
            port_path: Vec::new(), // root already on the border
        }
    }

    /// Fig. 6a: the capacity-4 tree in a 3×3 grid. Canonical orientation:
    /// the root's access port points north (row 0).
    fn base_m2() -> Self {
        HTreeEmbedding {
            m: 2,
            rows: 3,
            cols: 3,
            roles: Vec::new(),
            router_pos: vec![(1, 1), (1, 0), (1, 2)],
            leaf_pos: vec![(0, 0), (2, 0), (0, 2), (2, 2)],
            router_edge_paths: vec![Vec::new(), Vec::new()],
            leaf_edge_paths: vec![Vec::new(); 4],
            port_path: vec![(0, 1)],
        }
    }

    /// Fig. 6b: four `T_{m−2}` quadrants + a fresh root cross-bar →
    /// `T_m` in a square of side `2n + 1`.
    fn compose_even(sub: HTreeEmbedding) -> Self {
        let m = sub.m + 2;
        let n = sub.rows;
        debug_assert_eq!(sub.rows, sub.cols, "even quadrants are square");
        let s = 2 * n + 1;
        let qc = sub.router_pos[0].1; // root column of the canonical quadrant

        let mut e = HTreeEmbedding {
            m,
            rows: s,
            cols: s,
            roles: Vec::new(),
            router_pos: vec![(usize::MAX, usize::MAX); (1 << m) - 1],
            leaf_pos: vec![(usize::MAX, usize::MAX); 1 << m],
            router_edge_paths: vec![Vec::new(); (1 << m) - 2],
            leaf_edge_paths: vec![Vec::new(); 1 << m],
            port_path: Vec::new(),
        };

        // New root (heap 1) and its two children (heaps 2, 3) on the
        // middle row.
        e.router_pos[0] = (n, n);
        e.router_pos[1] = (n, qc);
        e.router_pos[2] = (n, n + 1 + qc);
        // Root → children paths along the middle row, parent-first.
        e.router_edge_paths[0] = ((qc + 1)..n).rev().map(|c| (n, c)).collect();
        e.router_edge_paths[1] = ((n + 1)..(n + 1 + qc)).map(|c| (n, c)).collect();

        // Quadrants: heap 4 = NW, 5 = SW, 6 = NE, 7 = SE. The north
        // quadrants are flipped vertically so their access ports face the
        // middle row.
        let placements = [
            (
                4usize,
                Placement {
                    dr: 0,
                    dc: 0,
                    flip_v: true,
                },
            ),
            (
                5,
                Placement {
                    dr: n + 1,
                    dc: 0,
                    flip_v: false,
                },
            ),
            (
                6,
                Placement {
                    dr: 0,
                    dc: n + 1,
                    flip_v: true,
                },
            ),
            (
                7,
                Placement {
                    dr: n + 1,
                    dc: n + 1,
                    flip_v: false,
                },
            ),
        ];
        for (q, placement) in placements {
            e.absorb_quadrant(&sub, q, placement);
        }

        // Root access port: north along the middle column.
        e.port_path = (0..n).rev().map(|r| (r, n)).collect();
        e
    }

    /// The paper's half-grid construction for odd widths: two `T_{m−1}`
    /// quadrants stacked vertically, fresh root on the middle row, access
    /// port pointing east.
    fn compose_odd(sub: HTreeEmbedding) -> Self {
        let m = sub.m + 1;
        let n = sub.rows;
        let qc = sub.router_pos[0].1;

        let mut e = HTreeEmbedding {
            m,
            rows: 2 * n + 1,
            cols: n,
            roles: Vec::new(),
            router_pos: vec![(usize::MAX, usize::MAX); (1 << m) - 1],
            leaf_pos: vec![(usize::MAX, usize::MAX); 1 << m],
            router_edge_paths: vec![Vec::new(); (1 << m) - 2],
            leaf_edge_paths: vec![Vec::new(); 1 << m],
            port_path: Vec::new(),
        };

        e.router_pos[0] = (n, qc);
        e.absorb_quadrant(
            &sub,
            2,
            Placement {
                dr: 0,
                dc: 0,
                flip_v: true,
            },
        );
        e.absorb_quadrant(
            &sub,
            3,
            Placement {
                dr: n + 1,
                dc: 0,
                flip_v: false,
            },
        );
        e.port_path = ((qc + 1)..n).map(|c| (n, c)).collect();
        e
    }

    /// Copies `sub` into `self` as the subtree rooted at heap node `q`
    /// (`q`'s parent is `q / 2`). The sub-root's access port becomes the
    /// parent → sub-root edge path.
    fn absorb_quadrant(&mut self, sub: &HTreeEmbedding, q: usize, placement: Placement) {
        let map = |(r, c): (usize, usize)| placement.apply((r, c), sub.rows);
        let sub_leaves = 1usize << sub.m;

        // Routers: sub heap j → global heap relabel(q, j).
        for j in 1..(1 << sub.m) {
            let g = relabel(q, j);
            self.router_pos[g - 1] = map(sub.router_pos[j - 1]);
            if j >= 2 {
                self.router_edge_paths[g - 2] = sub.router_edge_paths[j - 2]
                    .iter()
                    .map(|&p| map(p))
                    .collect();
            }
        }
        // The sub-root's incoming edge: the quadrant's port path, walked
        // from the parent (border side) toward the sub-root.
        let mut port: Vec<(usize, usize)> = sub.port_path.iter().map(|&p| map(p)).collect();
        port.reverse();
        self.router_edge_paths[q - 2] = port;

        // Leaves: quadrant q covers the address block of its subtree.
        let depth = q.ilog2() as usize; // 2 for even quadrants, 1 for odd halves
        let block = (q - (1 << depth)) * sub_leaves;
        for a in 0..sub_leaves {
            self.leaf_pos[block + a] = map(sub.leaf_pos[a]);
            self.leaf_edge_paths[block + a] =
                sub.leaf_edge_paths[a].iter().map(|&p| map(p)).collect();
        }
    }

    /// Derives the role grid from node positions and edge paths.
    fn mark_roles(&mut self) {
        self.roles = vec![CellRole::Unused; self.rows * self.cols];
        let cols = self.cols;
        let idx = |(r, c): (usize, usize)| r * cols + c;
        for &p in &self.router_pos {
            self.roles[idx(p)] = CellRole::Router;
        }
        for &p in &self.leaf_pos {
            self.roles[idx(p)] = CellRole::Data;
        }
        for path in self
            .router_edge_paths
            .iter()
            .chain(self.leaf_edge_paths.iter())
        {
            for &p in path {
                self.roles[idx(p)] = CellRole::Routing;
            }
        }
        for &p in &self.port_path {
            self.roles[idx(p)] = CellRole::Routing;
        }
    }

    /// The address width `m`.
    pub fn address_width(&self) -> usize {
        self.m
    }

    /// Memory capacity `2^m`.
    pub fn capacity(&self) -> usize {
        1 << self.m
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying grid topology.
    pub fn grid(&self) -> Grid {
        Grid::new(self.rows, self.cols)
    }

    /// Role of cell `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside the grid.
    pub fn role(&self, r: usize, c: usize) -> CellRole {
        assert!(
            r < self.rows && c < self.cols,
            "cell ({r},{c}) outside grid"
        );
        self.roles[r * self.cols + c]
    }

    /// Cell of router `heap` (1-based heap index).
    ///
    /// # Panics
    ///
    /// Panics if `heap` is not in `1 ..= 2^m − 1`.
    pub fn router_position(&self, heap: usize) -> (usize, usize) {
        assert!(
            heap >= 1 && heap < (1 << self.m),
            "heap index {heap} out of range"
        );
        self.router_pos[heap - 1]
    }

    /// Cell of the data leaf for `address`.
    ///
    /// # Panics
    ///
    /// Panics if `address >= 2^m`.
    pub fn leaf_position(&self, address: usize) -> (usize, usize) {
        assert!(address < (1 << self.m), "address {address} out of range");
        self.leaf_pos[address]
    }

    /// Intermediate routing cells from `parent(heap)` to router `heap`
    /// (empty = adjacent).
    pub fn edge_path_to_router(&self, heap: usize) -> &[(usize, usize)] {
        assert!(
            heap >= 2 && heap < (1 << self.m),
            "heap index {heap} has no parent edge"
        );
        &self.router_edge_paths[heap - 2]
    }

    /// Intermediate routing cells from the parent router to the leaf of
    /// `address`.
    pub fn edge_path_to_leaf(&self, address: usize) -> &[(usize, usize)] {
        assert!(address < (1 << self.m), "address {address} out of range");
        &self.leaf_edge_paths[address]
    }

    /// Routing cells from the root to the grid border (root-first); the
    /// entry port for bus and address qubits.
    pub fn port_path(&self) -> &[(usize, usize)] {
        &self.port_path
    }

    /// Grid distance (path length in hops) of the edge into router `heap`.
    pub fn router_edge_distance(&self, heap: usize) -> usize {
        self.edge_path_to_router(heap).len() + 1
    }

    /// Grid distance of the edge into the leaf of `address`.
    pub fn leaf_edge_distance(&self, address: usize) -> usize {
        self.edge_path_to_leaf(address).len() + 1
    }

    /// The longest edge (in hops) at tree level `level`: `1 ..= m − 1`
    /// index router levels (edges into routers at that depth), `m` indexes
    /// the leaf edges.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds `m`.
    pub fn level_distance(&self, level: usize) -> usize {
        assert!(level >= 1 && level <= self.m, "level {level} out of range");
        if level == self.m {
            (0..self.capacity())
                .map(|a| self.leaf_edge_distance(a))
                .max()
                .unwrap()
        } else {
            ((1 << level)..(1 << (level + 1)))
                .map(|h| self.router_edge_distance(h))
                .max()
                .unwrap()
        }
    }

    /// Counts cells by role.
    pub fn role_census(&self) -> RoleCensus {
        let mut census = RoleCensus::default();
        for role in &self.roles {
            match role {
                CellRole::Router => census.routers += 1,
                CellRole::Data => census.data += 1,
                CellRole::Routing => census.routing += 1,
                CellRole::Unused => census.unused += 1,
            }
        }
        census
    }

    /// Fraction of grid cells left unused (→ 25 % asymptotically for even
    /// `m`, Sec. 7.2).
    pub fn unused_fraction(&self) -> f64 {
        self.role_census().unused as f64 / (self.rows * self.cols) as f64
    }

    /// Checks the topological-minor invariants: every tree node in a
    /// distinct cell; every edge path a chain of adjacent, role-`Routing`,
    /// never-reused cells connecting its endpoints.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), EmbeddingError> {
        let grid = self.grid();
        let mut used = vec![false; self.rows * self.cols];
        let mut claim = |cell: (usize, usize)| -> Result<(), EmbeddingError> {
            let i = cell.0 * self.cols + cell.1;
            if used[i] {
                return Err(EmbeddingError::CellReused { cell });
            }
            used[i] = true;
            Ok(())
        };

        for &p in self.router_pos.iter().chain(self.leaf_pos.iter()) {
            claim(p)?;
        }

        let adjacent = |a: (usize, usize), b: (usize, usize)| grid.manhattan(a, b) == 1;
        let mut check_path = |from: (usize, usize),
                              path: &[(usize, usize)],
                              to: (usize, usize),
                              name: &str|
         -> Result<(), EmbeddingError> {
            let mut prev = from;
            for &cell in path {
                if self.roles[cell.0 * self.cols + cell.1] != CellRole::Routing {
                    return Err(EmbeddingError::WrongRole { cell });
                }
                claim(cell)?;
                if !adjacent(prev, cell) {
                    return Err(EmbeddingError::BrokenPath {
                        edge: name.to_string(),
                    });
                }
                prev = cell;
            }
            if !adjacent(prev, to) {
                return Err(EmbeddingError::BrokenPath {
                    edge: name.to_string(),
                });
            }
            Ok(())
        };

        for heap in 2..(1 << self.m) {
            check_path(
                self.router_pos[heap / 2 - 1],
                &self.router_edge_paths[heap - 2],
                self.router_pos[heap - 1],
                &format!("router {heap}"),
            )?;
        }
        for a in 0..self.capacity() {
            let parent = (1 << (self.m - 1)) + a / 2; // leaf's parent heap index
            check_path(
                self.router_pos[parent - 1],
                &self.leaf_edge_paths[a],
                self.leaf_pos[a],
                &format!("leaf {a}"),
            )?;
        }
        if !self.port_path.is_empty() {
            let mut prev = self.router_pos[0];
            for &cell in &self.port_path {
                if self.roles[cell.0 * self.cols + cell.1] != CellRole::Routing {
                    return Err(EmbeddingError::WrongRole { cell });
                }
                claim(cell)?;
                if !adjacent(prev, cell) {
                    return Err(EmbeddingError::BrokenPath {
                        edge: "port".to_string(),
                    });
                }
                prev = cell;
            }
            // The port must reach the border.
            let (r, c) = *self.port_path.last().unwrap();
            if r != 0 && c != 0 && r != self.rows - 1 && c != self.cols - 1 {
                return Err(EmbeddingError::BrokenPath {
                    edge: "port (not on border)".into(),
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for HTreeEmbedding {
    /// ASCII rendering: `R` router, `D` data, `·` routing, space unused.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "H-tree m={} on {}×{}", self.m, self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let ch = match self.role(r, c) {
                    CellRole::Router => 'R',
                    CellRole::Data => 'D',
                    CellRole::Routing => '·',
                    CellRole::Unused => ' ',
                };
                write!(f, "{ch}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Placement transform for a quadrant: offset plus optional vertical flip.
#[derive(Debug, Clone, Copy)]
struct Placement {
    dr: usize,
    dc: usize,
    flip_v: bool,
}

impl Placement {
    fn apply(&self, (r, c): (usize, usize), sub_rows: usize) -> (usize, usize) {
        let r = if self.flip_v { sub_rows - 1 - r } else { r };
        (self.dr + r, self.dc + c)
    }
}

/// Maps heap index `j` of a subtree onto the global heap index when the
/// subtree's root is global node `q`: the path bits of `j` are appended
/// to `q`.
fn relabel(q: usize, j: usize) -> usize {
    if j == 1 {
        q
    } else {
        2 * relabel(q, j / 2) + (j % 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_appends_path_bits() {
        assert_eq!(relabel(4, 1), 4);
        assert_eq!(relabel(4, 2), 8);
        assert_eq!(relabel(4, 3), 9);
        assert_eq!(relabel(5, 3), 11);
        assert_eq!(relabel(7, 5), 29); // 7 = 111, 5 = 1·01 → 11101
    }

    #[test]
    fn base_case_matches_figure_6a() {
        let e = HTreeEmbedding::new(2);
        assert_eq!((e.rows(), e.cols()), (3, 3));
        let census = e.role_census();
        assert_eq!(census.routers, 3);
        assert_eq!(census.data, 4);
        assert_eq!(census.routing, 1);
        assert_eq!(census.unused, 1);
        e.validate().unwrap();
    }

    #[test]
    fn even_sides_follow_recursion() {
        for (m, side) in [(2usize, 3usize), (4, 7), (6, 15), (8, 31)] {
            let e = HTreeEmbedding::new(m);
            assert_eq!(e.rows(), side, "m={m}");
            assert_eq!(e.cols(), side, "m={m}");
        }
    }

    #[test]
    fn odd_widths_use_half_grids() {
        let e3 = HTreeEmbedding::new(3);
        assert_eq!((e3.rows(), e3.cols()), (7, 3));
        let e5 = HTreeEmbedding::new(5);
        assert_eq!((e5.rows(), e5.cols()), (15, 7));
        let e1 = HTreeEmbedding::new(1);
        assert_eq!((e1.rows(), e1.cols()), (3, 1));
    }

    #[test]
    fn node_counts_match_tree() {
        for m in 1..=7 {
            let e = HTreeEmbedding::new(m);
            let census = e.role_census();
            assert_eq!(census.routers, (1 << m) - 1, "m={m}");
            assert_eq!(census.data, 1 << m, "m={m}");
        }
    }

    #[test]
    fn all_embeddings_are_topological_minors() {
        for m in 1..=8 {
            HTreeEmbedding::new(m)
                .validate()
                .unwrap_or_else(|e| panic!("m={m}: {e}"));
        }
    }

    #[test]
    fn unused_fraction_approaches_quarter() {
        // Sec. 7.2: 25 % asymptotically for even m, from below.
        let f4 = HTreeEmbedding::new(4).unused_fraction();
        let f6 = HTreeEmbedding::new(6).unused_fraction();
        let f8 = HTreeEmbedding::new(8).unused_fraction();
        assert!(f4 < f6 && f6 < f8, "{f4} {f6} {f8}");
        assert!(f8 < 0.25);
        assert!(f8 > 0.20);
    }

    #[test]
    fn root_edge_distance_grows_leaf_stays_constant() {
        let e = HTreeEmbedding::new(6);
        // Leaf edges are nearest-neighbor in every H-tree.
        assert_eq!(e.level_distance(6), 1);
        // Root edges span ~ a quarter of the grid and keep doubling.
        assert_eq!(e.level_distance(1), 4);
        assert_eq!(HTreeEmbedding::new(8).level_distance(1), 8);
    }

    #[test]
    fn level_distances_decrease_down_the_tree() {
        let e = HTreeEmbedding::new(8);
        let dists: Vec<usize> = (1..=8).map(|l| e.level_distance(l)).collect();
        for w in dists.windows(2) {
            assert!(w[0] >= w[1], "distances {dists:?} not monotone");
        }
    }

    #[test]
    fn port_reaches_border() {
        for m in 2..=6 {
            let e = HTreeEmbedding::new(m);
            let last = *e.port_path().last().unwrap();
            assert!(
                last.0 == 0 || last.1 == 0 || last.0 == e.rows() - 1 || last.1 == e.cols() - 1,
                "m={m}: port ends at {last:?}"
            );
        }
    }

    #[test]
    fn display_draws_every_cell() {
        let text = HTreeEmbedding::new(2).to_string();
        assert!(text.contains('R'));
        assert!(text.contains('D'));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_rejected() {
        let _ = HTreeEmbedding::new(0);
    }
}
