//! Mapping QRAM onto two-dimensional hardware (paper Sec. 4).
//!
//! Router-based QRAM entangles `O(M)` qubits arranged as a binary tree —
//! a structure that does not embed isometrically in 2D Euclidean space
//! (only hyperbolic geometry keeps all parent–child distances equal). The
//! paper shows QRAM can nevertheless be mapped to a 2D nearest-neighbor
//! grid *without asymptotic routing overhead* by combining:
//!
//! * [`HTreeEmbedding`] — a constructive topological-minor embedding of
//!   the QRAM tree via the classical H-tree recursion (Sec. 4.2), with
//!   every cell classified as router / data / routing / unused;
//! * teleportation-based routing (Sec. 4.3) — entanglement swapping
//!   across the idle routing cells moves qubits any distance in constant
//!   depth, keeping the query at its native `O(log M)` depth, versus the
//!   exponentially-growing cost of SWAP chains ([`swap_extra_depth`] vs
//!   [`teleport_extra_depth`], Fig. 8);
//! * [`sabre_lite`](route) — a greedy SWAP-insertion router for sparse
//!   device coupling maps, standing in for Qiskit's SABRE in the
//!   Appendix A experiments.
//!
//! # Example
//!
//! ```
//! use qram_layout::{routing_overhead_sweep, HTreeEmbedding};
//!
//! let e = HTreeEmbedding::new(6); // capacity-64 QRAM on a 15×15 grid
//! e.validate().expect("topological minor");
//! let sweep = routing_overhead_sweep(6);
//! let last = sweep.last().unwrap();
//! assert!(last.swap_depth > last.teleport_depth);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod htree;
mod placement;
mod routing;
mod sabre;
mod teleport;
mod topology;

pub use htree::{CellRole, EmbeddingError, HTreeEmbedding, RoleCensus};
pub use placement::{Placement, RoutingDiscipline};
pub use routing::{
    routing_overhead_sweep, swap_extra_depth, teleport_extra_depth, RoutingOverhead, SWAP_DEPTH,
    TELEPORT_DEPTH,
};
pub use sabre::{
    choose_initial_layout, route, route_with_chosen_layout, route_with_layout, RoutedCircuit,
    RoutingError,
};
pub use teleport::{swap_chain, teleport_chain};
pub use topology::{CouplingGraph, Grid, Topology};
