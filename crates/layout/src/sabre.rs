//! `sabre_lite`: greedy SWAP-insertion routing for sparse device
//! topologies (Appendix A substrate).
//!
//! The paper transpiles its small-scale QRAM circuits onto IBMQ backends
//! with Qiskit's SABRE pass and reports the inserted SWAP counts
//! (Fig. 12). SABRE itself is a lookahead heuristic; this module
//! implements the lookahead-free greedy core — walk the circuit in order
//! and, whenever a 2-qubit gate spans non-adjacent physical qubits, shuttle
//! one operand along a shortest path, updating the layout — which produces
//! SWAP counts of the same order (see DESIGN.md's substitution table).
//!
//! Multi-qubit gates are routed at Clifford+T granularity: callers lower
//! the circuit with [`qram_circuit::decompose::lower`] first, so only CX
//! gates need adjacency.

use qram_circuit::decompose::{CliffordTGate, LoweredCircuit};
use qram_circuit::Qubit;

use crate::Topology;

/// The result of routing a circuit onto a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedCircuit {
    /// Gates in execution order, over *physical* qubit indices, with
    /// inserted SWAPs realized as 3 CX each.
    gates: Vec<CliffordTGate>,
    /// Number of SWAPs inserted.
    swap_count: usize,
    /// Final layout: `layout[logical] = physical`.
    layout: Vec<usize>,
}

impl RoutedCircuit {
    /// The routed physical-qubit gate sequence (SWAPs lowered to CX).
    pub fn gates(&self) -> &[CliffordTGate] {
        &self.gates
    }

    /// Number of SWAP gates inserted by the router (the Fig. 12 legend
    /// numbers).
    pub fn swap_count(&self) -> usize {
        self.swap_count
    }

    /// The final logical → physical layout.
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// Total gate count including the 3 CX per inserted SWAP.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }
}

/// Errors produced by the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The circuit needs more qubits than the topology has sites.
    TooFewSites {
        /// Logical qubits required.
        required: usize,
        /// Physical sites available.
        available: usize,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::TooFewSites {
                required,
                available,
            } => {
                write!(
                    f,
                    "circuit needs {required} qubits but device has {available} sites"
                )
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Routes a lowered circuit onto `topology` with the identity initial
/// layout (logical qubit `i` starts at site `i`).
///
/// # Errors
///
/// Returns [`RoutingError::TooFewSites`] if the circuit is wider than the
/// device.
pub fn route<T: Topology>(
    circuit: &LoweredCircuit,
    topology: &T,
) -> Result<RoutedCircuit, RoutingError> {
    let layout: Vec<usize> = (0..circuit.num_qubits()).collect();
    route_with_layout(circuit, topology, layout)
}

/// Chooses an initial layout by interaction-graph BFS: the most-coupled
/// logical qubit is pinned to the highest-degree site, then neighbors in
/// the circuit's interaction graph are greedily placed on free sites
/// closest to their already-placed partners — a lightweight stand-in for
/// SABRE's bidirectional layout search that typically removes the
/// worst-case shuttles of the identity layout.
///
/// # Errors
///
/// Returns [`RoutingError::TooFewSites`] if the circuit is wider than the
/// device.
pub fn choose_initial_layout<T: Topology>(
    circuit: &LoweredCircuit,
    topology: &T,
) -> Result<Vec<usize>, RoutingError> {
    let n = circuit.num_qubits();
    let sites = topology.num_sites();
    if n > sites {
        return Err(RoutingError::TooFewSites {
            required: n,
            available: sites,
        });
    }
    // Interaction weights between logical qubits.
    let mut weight = vec![vec![0usize; n]; n];
    for g in circuit.gates() {
        if let CliffordTGate::Cx(a, b) = g {
            weight[a.index()][b.index()] += 1;
            weight[b.index()][a.index()] += 1;
        }
    }
    let degree = |q: usize| weight[q].iter().sum::<usize>();

    let mut layout = vec![usize::MAX; n];
    let mut site_used = vec![false; sites];

    // Seed: busiest logical qubit on the highest-degree site.
    let seed_logical = (0..n).max_by_key(|&q| degree(q)).unwrap_or(0);
    let seed_site = (0..sites)
        .max_by_key(|&s| topology.neighbors(s).len())
        .unwrap_or(0);
    layout[seed_logical] = seed_site;
    site_used[seed_site] = true;

    // Greedy: repeatedly place the unplaced qubit with the strongest ties
    // to placed ones, on the free site minimizing weighted distance.
    for _ in 1..n {
        let next = (0..n)
            .filter(|&q| layout[q] == usize::MAX)
            .max_by_key(|&q| {
                (0..n)
                    .filter(|&p| layout[p] != usize::MAX)
                    .map(|p| weight[q][p])
                    .sum::<usize>()
            })
            .expect("unplaced qubit remains");
        let best_site = (0..sites)
            .filter(|&s| !site_used[s])
            .min_by_key(|&s| {
                (0..n)
                    .filter(|&p| layout[p] != usize::MAX && weight[next][p] > 0)
                    .map(|p| weight[next][p] * topology.distance(s, layout[p]))
                    .sum::<usize>()
            })
            .expect("free site remains");
        layout[next] = best_site;
        site_used[best_site] = true;
    }
    Ok(layout)
}

/// Routes with [`choose_initial_layout`] — usually fewer SWAPs than
/// [`route`]'s identity layout on sparse devices.
///
/// # Errors
///
/// Returns [`RoutingError::TooFewSites`] if the circuit is wider than the
/// device.
pub fn route_with_chosen_layout<T: Topology>(
    circuit: &LoweredCircuit,
    topology: &T,
) -> Result<RoutedCircuit, RoutingError> {
    let layout = choose_initial_layout(circuit, topology)?;
    route_with_layout(circuit, topology, layout)
}

/// Routes a lowered circuit with an explicit initial layout
/// (`layout[logical] = physical`).
///
/// # Errors
///
/// Returns [`RoutingError::TooFewSites`] if any layout entry is out of
/// range.
///
/// # Panics
///
/// Panics if `layout` maps two logical qubits to one site.
pub fn route_with_layout<T: Topology>(
    circuit: &LoweredCircuit,
    topology: &T,
    mut layout: Vec<usize>,
) -> Result<RoutedCircuit, RoutingError> {
    let sites = topology.num_sites();
    if circuit.num_qubits() > sites {
        return Err(RoutingError::TooFewSites {
            required: circuit.num_qubits(),
            available: sites,
        });
    }
    for &p in &layout {
        if p >= sites {
            return Err(RoutingError::TooFewSites {
                required: p + 1,
                available: sites,
            });
        }
    }
    {
        let mut seen = vec![false; sites];
        for &p in &layout {
            assert!(!seen[p], "layout maps two logical qubits to site {p}");
            seen[p] = true;
        }
    }
    // site_of_logical = layout; logical_at_site = inverse (usize::MAX = empty).
    let mut at_site = vec![usize::MAX; sites];
    for (l, &p) in layout.iter().enumerate() {
        at_site[p] = l;
    }

    let mut out = Vec::with_capacity(circuit.gates().len());
    let mut swap_count = 0usize;

    let emit_swap = |a: usize,
                     b: usize,
                     out: &mut Vec<CliffordTGate>,
                     layout: &mut Vec<usize>,
                     at_site: &mut Vec<usize>| {
        // SWAP lowered to 3 CX on physical sites.
        let (qa, qb) = (Qubit(a as u32), Qubit(b as u32));
        out.push(CliffordTGate::Cx(qa, qb));
        out.push(CliffordTGate::Cx(qb, qa));
        out.push(CliffordTGate::Cx(qa, qb));
        // Update layout: whatever logical qubits live at a/b swap homes.
        let (la, lb) = (at_site[a], at_site[b]);
        if la != usize::MAX {
            layout[la] = b;
        }
        if lb != usize::MAX {
            layout[lb] = a;
        }
        at_site.swap(a, b);
    };

    for gate in circuit.gates() {
        match gate {
            CliffordTGate::Cx(c, t) => {
                let mut pc = layout[c.index()];
                let pt = layout[t.index()];
                if topology.distance(pc, pt) > 1 {
                    // Shuttle the control along a shortest path until
                    // adjacent to the target.
                    let path = topology.shortest_path(pc, pt);
                    for hop in &path[1..path.len() - 1] {
                        emit_swap(pc, *hop, &mut out, &mut layout, &mut at_site);
                        swap_count += 1;
                        pc = *hop;
                    }
                }
                out.push(CliffordTGate::Cx(
                    Qubit(pc as u32),
                    Qubit(layout[t.index()] as u32),
                ));
            }
            // Single-qubit gates relocate to the current site.
            g => {
                let q = g.qubits()[0];
                let p = Qubit(layout[q.index()] as u32);
                out.push(match g {
                    CliffordTGate::H(_) => CliffordTGate::H(p),
                    CliffordTGate::S(_) => CliffordTGate::S(p),
                    CliffordTGate::Sdg(_) => CliffordTGate::Sdg(p),
                    CliffordTGate::T(_) => CliffordTGate::T(p),
                    CliffordTGate::Tdg(_) => CliffordTGate::Tdg(p),
                    CliffordTGate::X(_) => CliffordTGate::X(p),
                    CliffordTGate::Z(_) => CliffordTGate::Z(p),
                    CliffordTGate::Cx(..) => unreachable!("handled above"),
                });
            }
        }
    }
    Ok(RoutedCircuit {
        gates: out,
        swap_count,
        layout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CouplingGraph;
    use qram_circuit::decompose::lower;
    use qram_circuit::{Circuit, Gate};

    /// Path topology 0-1-2-3.
    fn line(n: usize) -> CouplingGraph {
        CouplingGraph::new(n, (0..n - 1).map(|i| (i, i + 1)).collect())
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        let routed = route(&lower(&c), &line(2)).unwrap();
        assert_eq!(routed.swap_count(), 0);
        assert_eq!(routed.gate_count(), 1);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(Qubit(0), Qubit(3)));
        let routed = route(&lower(&c), &line(4)).unwrap();
        // Distance 3 → 2 swaps to become adjacent.
        assert_eq!(routed.swap_count(), 2);
        // Layout reflects the shuttle: logical 0 now lives at site 2.
        assert_eq!(routed.layout()[0], 2);
    }

    #[test]
    fn routed_gates_are_all_adjacent() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(Qubit(0), Qubit(3)));
        c.push(Gate::cx(Qubit(1), Qubit(2)));
        c.push(Gate::ccx(Qubit(0), Qubit(2), Qubit(3)));
        let topo = line(4);
        let routed = route(&lower(&c), &topo).unwrap();
        for g in routed.gates() {
            if let CliffordTGate::Cx(a, b) = g {
                assert_eq!(topo.distance(a.index(), b.index()), 1, "gate {g:?}");
            }
        }
    }

    #[test]
    fn single_qubit_gates_follow_their_logical_qubit() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(Qubit(0), Qubit(2))); // forces a shuttle of q0
        c.push(Gate::x(Qubit(0)));
        let routed = route(&lower(&c), &line(3)).unwrap();
        // The final X must act on logical 0's new home (site 1).
        assert_eq!(*routed.gates().last().unwrap(), CliffordTGate::X(Qubit(1)));
    }

    #[test]
    fn too_small_device_is_rejected() {
        let mut c = Circuit::new(5);
        c.push(Gate::x(Qubit(4)));
        let err = route(&lower(&c), &line(3)).unwrap_err();
        assert!(matches!(
            err,
            RoutingError::TooFewSites {
                required: 5,
                available: 3
            }
        ));
    }

    #[test]
    fn custom_initial_layout_is_respected() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        // Map logical 0 → site 2, logical 1 → site 0 on a 3-line: distance
        // 2 → 1 swap.
        let routed = route_with_layout(&lower(&c), &line(3), vec![2, 0]).unwrap();
        assert_eq!(routed.swap_count(), 1);
    }

    #[test]
    fn chosen_layout_beats_or_matches_identity() {
        // A circuit whose identity layout is pessimal on a line: qubit 0
        // talks to qubit 3 constantly.
        let mut c = Circuit::new(4);
        for _ in 0..4 {
            c.push(Gate::cx(Qubit(0), Qubit(3)));
            c.push(Gate::cx(Qubit(3), Qubit(0)));
        }
        let low = lower(&c);
        let topo = line(4);
        let identity = route(&low, &topo).unwrap();
        let chosen = route_with_chosen_layout(&low, &topo).unwrap();
        assert!(
            chosen.swap_count() <= identity.swap_count(),
            "chosen {} vs identity {}",
            chosen.swap_count(),
            identity.swap_count()
        );
        // The interacting pair should start adjacent → zero swaps.
        assert_eq!(chosen.swap_count(), 0);
    }

    #[test]
    fn chosen_layout_is_a_permutation() {
        let mut c = Circuit::new(5);
        c.push(Gate::ccx(Qubit(0), Qubit(2), Qubit(4)));
        c.push(Gate::cx(Qubit(1), Qubit(3)));
        let low = lower(&c);
        let topo = line(6);
        let layout = choose_initial_layout(&low, &topo).unwrap();
        let mut seen = [false; 6];
        for &s in &layout {
            assert!(!seen[s], "site {s} reused");
            seen[s] = true;
        }
    }

    #[test]
    fn denser_topology_needs_fewer_swaps() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(Qubit(0), Qubit(3)));
        c.push(Gate::cx(Qubit(1), Qubit(3)));
        c.push(Gate::cx(Qubit(0), Qubit(2)));
        let low = lower(&c);
        let sparse = route(&low, &line(4)).unwrap();
        // Fully connected: K4.
        let dense = CouplingGraph::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let routed_dense = route(&low, &dense).unwrap();
        assert_eq!(routed_dense.swap_count(), 0);
        assert!(sparse.swap_count() > 0);
    }
}
