//! The span tracer: per-request virtual-time intervals for every
//! pipeline stage, exported as a canonically-ordered event log with an
//! fnv1a digest.
//!
//! Spans deliberately carry **only knob-invariant facts** — virtual
//! times, request ids, group keys, shot counts, execution-unit indices.
//! Worker counts, shot-thread counts and path-chunk settings never
//! appear in a span, because the whole point of the digest is to be
//! bit-identical across the `{workers} × {shot-threads} × {path-chunks}`
//! matrix: the same workload must produce the same trace no matter how
//! the host parallelized it.

use crate::fnv1a_64;
use crate::Ticks;

/// Request ids at or above this bit are synthetic: terminal admission
/// spans for shed/rejected arrivals, which never receive a real service
/// id. The low bits carry the offered-arrival ordinal.
pub const SYNTHETIC_REQUEST_BASE: u64 = 1 << 63;

/// How an arrival left the admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admitted into the pending queue.
    Accepted,
    /// Dropped by the admission controller (queue at capacity).
    Shed,
    /// Refused as malformed (spec/address validation failed).
    Rejected,
}

impl AdmissionOutcome {
    /// Stable label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionOutcome::Accepted => "accepted",
            AdmissionOutcome::Shed => "shed",
            AdmissionOutcome::Rejected => "rejected",
        }
    }

    fn tag(self) -> u8 {
        match self {
            AdmissionOutcome::Accepted => 0,
            AdmissionOutcome::Shed => 1,
            AdmissionOutcome::Rejected => 2,
        }
    }
}

/// Why a batch fired when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireReason {
    /// The group reached the batch-size limit.
    Full,
    /// The group's oldest request hit its batching deadline.
    Deadline,
    /// Work conservation: units were idle, so the oldest group fired
    /// early rather than letting capacity go unused.
    WorkConserving,
    /// End-of-run drain flushed the remaining groups.
    Drain,
    /// Cache-affine work conservation: a free unit was given to a
    /// younger group whose compiled circuit was cache-resident (zero
    /// compile ticks) in preference to the oldest pending group.
    CacheAffine,
}

impl FireReason {
    /// Stable label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            FireReason::Full => "full",
            FireReason::Deadline => "deadline",
            FireReason::WorkConserving => "work-conserving",
            FireReason::Drain => "drain",
            FireReason::CacheAffine => "cache-affine",
        }
    }

    fn tag(self) -> u8 {
        match self {
            FireReason::Full => 0,
            FireReason::Deadline => 1,
            FireReason::WorkConserving => 2,
            FireReason::Drain => 3,
            // Appended, never renumbered: existing trace digests stay
            // stable.
            FireReason::CacheAffine => 4,
        }
    }
}

/// Why the fleet router placed a request on the shard it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteReason {
    /// Deterministic consistent hash of the request's spec key.
    Hash,
    /// Planner-informed pin: the spec's family is pinned to a shard.
    Pinned,
    /// Replicated hot spec: the winner among the replica set, chosen by
    /// the cache-residency probe (falling back to the lowest shard id).
    Replica,
}

impl RouteReason {
    /// Stable label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            RouteReason::Hash => "hash",
            RouteReason::Pinned => "pinned",
            RouteReason::Replica => "replica",
        }
    }

    fn tag(self) -> u8 {
        match self {
            RouteReason::Hash => 0,
            RouteReason::Pinned => 1,
            RouteReason::Replica => 2,
        }
    }
}

/// Which verification level the compile stage ran under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyTag {
    /// Structural checks only.
    Structural,
    /// Full semantic (deep) verification.
    Deep,
}

impl VerifyTag {
    /// Stable label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            VerifyTag::Structural => "structural",
            VerifyTag::Deep => "deep",
        }
    }

    fn tag(self) -> u8 {
        match self {
            VerifyTag::Structural => 0,
            VerifyTag::Deep => 1,
        }
    }
}

/// The stage a span covers, with its stage-specific payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanStage {
    /// The admission decision (instantaneous on the virtual clock).
    Admission {
        /// Outcome of the decision.
        outcome: AdmissionOutcome,
        /// Requests in the system when the decision was made.
        queue_depth: u64,
    },
    /// Time spent waiting in the batching queue and for an execution
    /// unit, after arrival and excluding compile time.
    QueueWait {
        /// Batch group key (the spec's architecture name).
        group: String,
    },
    /// Batch formation: a group left the pending queue.
    BatchForm {
        /// Batch group key (the spec's architecture name).
        group: String,
        /// Why the batch fired now.
        reason: FireReason,
        /// Requests in the batch.
        size: u64,
    },
    /// The compile stage for a batch (zero-width on cache hits).
    Compile {
        /// Batch group key (the spec's architecture name).
        group: String,
        /// Whether the compiled circuit came from the cache.
        cache_hit: bool,
        /// Verification level the compiler ran under.
        verify: VerifyTag,
    },
    /// Occupancy of an execution unit by one request.
    Execute {
        /// Index of the execution unit that served the request.
        unit: u64,
        /// Shots sampled for the request.
        shots: u64,
    },
    /// The fleet router's placement decision for one request
    /// (instantaneous on the virtual clock). Appended at rank 5, never
    /// renumbered: single-service trace digests stay stable.
    Route {
        /// Shard the request was placed on.
        shard: u64,
        /// Why the router picked that shard.
        reason: RouteReason,
    },
}

impl SpanStage {
    /// Stable stage name used in JSON exports.
    pub fn name(&self) -> &'static str {
        match self {
            SpanStage::Admission { .. } => "admission",
            SpanStage::QueueWait { .. } => "queue_wait",
            SpanStage::BatchForm { .. } => "batch_form",
            SpanStage::Compile { .. } => "compile",
            SpanStage::Execute { .. } => "execute",
            SpanStage::Route { .. } => "route",
        }
    }

    /// Pipeline order of the stage, used as a canonical-sort tiebreak.
    fn rank(&self) -> u8 {
        match self {
            SpanStage::Admission { .. } => 0,
            SpanStage::QueueWait { .. } => 1,
            SpanStage::BatchForm { .. } => 2,
            SpanStage::Compile { .. } => 3,
            SpanStage::Execute { .. } => 4,
            // Appended, never renumbered: existing trace digests stay
            // stable.
            SpanStage::Route { .. } => 5,
        }
    }

    fn digest_bytes(&self, out: &mut Vec<u8>) {
        out.push(self.rank());
        match self {
            SpanStage::Admission {
                outcome,
                queue_depth,
            } => {
                out.push(outcome.tag());
                out.extend_from_slice(&queue_depth.to_le_bytes());
            }
            SpanStage::QueueWait { group } => push_str(out, group),
            SpanStage::BatchForm {
                group,
                reason,
                size,
            } => {
                push_str(out, group);
                out.push(reason.tag());
                out.extend_from_slice(&size.to_le_bytes());
            }
            SpanStage::Compile {
                group,
                cache_hit,
                verify,
            } => {
                push_str(out, group);
                out.push(u8::from(*cache_hit));
                out.push(verify.tag());
            }
            SpanStage::Execute { unit, shots } => {
                out.extend_from_slice(&unit.to_le_bytes());
                out.extend_from_slice(&shots.to_le_bytes());
            }
            SpanStage::Route { shard, reason } => {
                out.extend_from_slice(&shard.to_le_bytes());
                out.push(reason.tag());
            }
        }
    }

    fn payload_json(&self) -> String {
        match self {
            SpanStage::Admission {
                outcome,
                queue_depth,
            } => format!(
                "\"outcome\": \"{}\", \"queue_depth\": {queue_depth}",
                outcome.label()
            ),
            SpanStage::QueueWait { group } => format!("\"group\": \"{group}\""),
            SpanStage::BatchForm {
                group,
                reason,
                size,
            } => format!(
                "\"group\": \"{group}\", \"reason\": \"{}\", \"size\": {size}",
                reason.label()
            ),
            SpanStage::Compile {
                group,
                cache_hit,
                verify,
            } => format!(
                "\"group\": \"{group}\", \"cache_hit\": {cache_hit}, \"verify\": \"{}\"",
                verify.label()
            ),
            SpanStage::Execute { unit, shots } => {
                format!("\"unit\": {unit}, \"shots\": {shots}")
            }
            SpanStage::Route { shard, reason } => {
                format!("\"shard\": {shard}, \"reason\": \"{}\"", reason.label())
            }
        }
    }
}

/// One virtual-time interval in the life of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Request id (or a [`SYNTHETIC_REQUEST_BASE`]-tagged ordinal for
    /// arrivals that never got one).
    pub request: u64,
    /// Interval start on the virtual clock.
    pub start: Ticks,
    /// Interval end on the virtual clock (equal to `start` for
    /// instantaneous events such as admission decisions).
    pub end: Ticks,
    /// The pipeline stage this span covers.
    pub stage: SpanStage,
}

impl SpanEvent {
    fn sort_key(&self) -> (Ticks, u64, u8, Ticks) {
        (self.start, self.request, self.stage.rank(), self.end)
    }

    fn digest_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.extend_from_slice(&self.request.to_le_bytes());
        self.stage.digest_bytes(out);
    }

    /// One JSON object for the span. Synthetic request ids are masked
    /// back to the offered-arrival ordinal and marked `"terminal"`.
    pub fn to_json(&self) -> String {
        let (request, terminal) = if self.request >= SYNTHETIC_REQUEST_BASE {
            (self.request - SYNTHETIC_REQUEST_BASE, true)
        } else {
            (self.request, false)
        };
        let terminal = if terminal { ", \"terminal\": true" } else { "" };
        format!(
            "{{\"request\": {request}, \"stage\": \"{}\", \"start\": {}, \"end\": {}, {}{terminal}}}",
            self.stage.name(),
            self.start,
            self.end,
            self.stage.payload_json()
        )
    }
}

/// Accumulates [`SpanEvent`]s and exports them as a canonically-ordered
/// log with an fnv1a-64 digest.
///
/// Recording sites only ever append from the coordinating thread, so
/// the in-memory order is already deterministic; the canonical sort by
/// `(start, request, stage, end)` additionally makes the exported log
/// and digest independent of *any* recording order, should a future
/// recorder buffer per shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTracer {
    events: Vec<SpanEvent>,
}

impl SpanTracer {
    /// An empty tracer.
    pub fn new() -> Self {
        SpanTracer::default()
    }

    /// Appends one span.
    pub fn push(&mut self, event: SpanEvent) {
        self.events.push(event);
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Recorded spans in append order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Spans sorted into the canonical `(start, request, stage, end)`
    /// order used for export and digesting.
    pub fn canonical(&self) -> Vec<SpanEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(SpanEvent::sort_key);
        sorted
    }

    /// fnv1a-64 digest of the canonical event log.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::new();
        for event in self.canonical() {
            event.digest_bytes(&mut bytes);
        }
        fnv1a_64(bytes)
    }

    /// The canonical log as a JSON array (one span object per line).
    pub fn to_json(&self, indent: &str) -> String {
        let spans: Vec<String> = self
            .canonical()
            .iter()
            .map(|e| format!("{indent}  {}", e.to_json()))
            .collect();
        format!("{indent}[\n{}\n{indent}]", spans.join(",\n"))
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(request: u64, start: Ticks) -> SpanEvent {
        SpanEvent {
            request,
            start,
            end: start + 10,
            stage: SpanStage::Execute { unit: 0, shots: 4 },
        }
    }

    #[test]
    fn digest_is_order_insensitive() {
        let mut a = SpanTracer::new();
        a.push(span(1, 100));
        a.push(span(2, 50));
        let mut b = SpanTracer::new();
        b.push(span(2, 50));
        b.push(span(1, 100));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn digest_sees_payload_changes() {
        let mut a = SpanTracer::new();
        a.push(span(1, 100));
        let mut b = SpanTracer::new();
        b.push(SpanEvent {
            stage: SpanStage::Execute { unit: 1, shots: 4 },
            ..span(1, 100)
        });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn json_masks_synthetic_ids() {
        let mut t = SpanTracer::new();
        t.push(SpanEvent {
            request: SYNTHETIC_REQUEST_BASE + 3,
            start: 7,
            end: 7,
            stage: SpanStage::Admission {
                outcome: AdmissionOutcome::Shed,
                queue_depth: 9,
            },
        });
        let json = t.to_json("");
        assert!(json.contains("\"request\": 3"), "{json}");
        assert!(json.contains("\"terminal\": true"), "{json}");
        assert!(json.contains("\"outcome\": \"shed\""), "{json}");
    }

    #[test]
    fn stage_names_are_stable() {
        let stages = [
            SpanStage::Admission {
                outcome: AdmissionOutcome::Accepted,
                queue_depth: 0,
            },
            SpanStage::QueueWait { group: "g".into() },
            SpanStage::BatchForm {
                group: "g".into(),
                reason: FireReason::Deadline,
                size: 2,
            },
            SpanStage::Compile {
                group: "g".into(),
                cache_hit: true,
                verify: VerifyTag::Structural,
            },
            SpanStage::Execute { unit: 1, shots: 2 },
            SpanStage::Route {
                shard: 2,
                reason: RouteReason::Hash,
            },
        ];
        let names: Vec<&str> = stages.iter().map(SpanStage::name).collect();
        assert_eq!(
            names,
            [
                "admission",
                "queue_wait",
                "batch_form",
                "compile",
                "execute",
                "route"
            ]
        );
    }

    #[test]
    fn route_spans_digest_shard_and_reason() {
        let route = |shard, reason| {
            let mut t = SpanTracer::new();
            t.push(SpanEvent {
                request: 4,
                start: 9,
                end: 9,
                stage: SpanStage::Route { shard, reason },
            });
            t
        };
        let base = route(0, RouteReason::Hash);
        assert_ne!(base.digest(), route(1, RouteReason::Hash).digest());
        assert_ne!(base.digest(), route(0, RouteReason::Pinned).digest());
        let json = route(3, RouteReason::Replica).to_json("");
        assert!(json.contains("\"stage\": \"route\""), "{json}");
        assert!(json.contains("\"shard\": 3"), "{json}");
        assert!(json.contains("\"reason\": \"replica\""), "{json}");
    }
}
