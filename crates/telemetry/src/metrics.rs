//! Mergeable, deterministic metrics: counters, high-water gauges and
//! log-linear histograms.
//!
//! Everything here is integer arithmetic over [`BTreeMap`]s, so two
//! registries fed the same values — in any interleaving, on any number
//! of threads, merged in any association — are **bit-identical**. That
//! is the property the serving stack's digest discipline needs: a
//! histogram is as diffable as a results digest.

use std::collections::BTreeMap;

use crate::fnv1a_64;

/// Values below this are their own bucket (exact ticks).
const LINEAR_MAX: u64 = 128;
/// Sub-bucket resolution above the linear range: 2^6 = 64 buckets per
/// octave, bounding relative error by 1/64.
const SUB_BITS: u64 = 6;

/// Bucket index for a recorded value.
///
/// Values `< 128` map to themselves (exact-tick buckets, so the small
/// latencies the virtual clock actually distinguishes are never
/// coarsened). Larger values use a log-linear scheme: 64 sub-buckets
/// per power of two, giving a worst-case relative error of `1/64`.
fn bucket_index(value: u64) -> u64 {
    if value < LINEAR_MAX {
        return value;
    }
    let msb = 63 - u64::from(value.leading_zeros());
    let shift = msb - SUB_BITS;
    let mantissa = value >> shift; // in [64, 128)
    (shift << SUB_BITS) + mantissa
}

/// Smallest value mapping to `index` — the canonical representative
/// reported by [`Histogram::percentile`] and [`Histogram::max`].
fn bucket_floor(index: u64) -> u64 {
    if index < LINEAR_MAX {
        return index;
    }
    let shift = (index >> SUB_BITS) - 1;
    let mantissa = index - (shift << SUB_BITS);
    mantissa << shift
}

/// A log-linear histogram over `u64` samples (virtual-time ticks).
///
/// * **exact-tick buckets** below 128; `1/64` relative resolution above;
/// * **deterministic merge**: bucket counts add, so merge is exactly
///   associative and commutative (pinned by proptest);
/// * **`percentile()` consistent with `report::percentile`**: the same
///   nearest-rank rule, answering the bucket floor — i.e. exactly what
///   `report::percentile` returns over the floor-quantized samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse bucket counts, keyed by bucket index. A `BTreeMap` keeps
    /// iteration (and therefore digests and JSON) in value order.
    buckets: BTreeMap<u64, u64>,
    /// Total recorded samples.
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(bucket_index(value)).or_insert(0) += n;
        self.total += n;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds every bucket of `other` into `self`.
    ///
    /// Integer bucket addition makes this exactly associative and
    /// order-insensitive: any merge tree over the same shards yields a
    /// bit-identical histogram.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        self.total += other.total;
    }

    /// Nearest-rank percentile, `q` in `[0, 100]`.
    ///
    /// Uses the same rule as `qram_bench::report::percentile` —
    /// `rank = ceil(q/100 · n)` clamped to `[1, n]` — and returns the
    /// floor of the bucket holding that rank. Over floor-quantized
    /// samples the two implementations agree exactly (pinned by test).
    /// Empty histograms answer 0.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        let mut last = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            last = index;
            if seen >= rank {
                return bucket_floor(index);
            }
        }
        bucket_floor(last)
    }

    /// Floor of the highest occupied bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .keys()
            .next_back()
            .map_or(0, |&index| bucket_floor(index))
    }

    /// The representative (bucket floor) a value collapses to.
    ///
    /// Exposed so tests can quantize raw samples exactly the way the
    /// histogram does before comparing percentile implementations.
    pub fn quantize(value: u64) -> u64 {
        bucket_floor(bucket_index(value))
    }

    /// Canonical byte serialization folded into registry digests.
    fn digest_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.total.to_le_bytes());
        for (&index, &n) in &self.buckets {
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
    }
}

/// A registry of named counters, high-water gauges and [`Histogram`]s.
///
/// Names are `&'static str` so recording sites pay no allocation; maps
/// are `BTreeMap` so iteration, JSON and the digest are independent of
/// insertion order. Registries merge deterministically — shard-local
/// registries summed in any order produce identical state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Raises the named high-water gauge to `value` if it is larger.
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        let slot = self.gauges.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Current value of a gauge (0 when never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named histogram, if anything was recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &v)| (name, v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&name, &v)| (name, v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&name, h)| (name, h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the max, histograms merge bucket-wise. Exactly associative and
    /// order-insensitive.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &other.gauges {
            let slot = self.gauges.entry(name).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge_from(h);
        }
    }

    /// fnv1a-64 digest over the canonical (name-ordered) serialization.
    ///
    /// Two registries compare equal iff their digests match, so CI can
    /// diff one hex line instead of the full dump.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::new();
        for (&name, &v) in &self.counters {
            bytes.push(0u8);
            push_str(&mut bytes, name);
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for (&name, &v) in &self.gauges {
            bytes.push(1u8);
            push_str(&mut bytes, name);
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for (&name, h) in &self.histograms {
            bytes.push(2u8);
            push_str(&mut bytes, name);
            h.digest_bytes(&mut bytes);
        }
        fnv1a_64(bytes)
    }

    /// Hand-rolled JSON dump (the workspace carries no serde): counters
    /// and gauges verbatim, histograms as count/percentile summaries.
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!("{indent}  \"counters\": {{"));
        let items: Vec<String> = self
            .counters
            .iter()
            .map(|(name, v)| format!("\"{name}\": {v}"))
            .collect();
        out.push_str(&items.join(", "));
        out.push_str("},\n");
        out.push_str(&format!("{indent}  \"gauges\": {{"));
        let items: Vec<String> = self
            .gauges
            .iter()
            .map(|(name, v)| format!("\"{name}\": {v}"))
            .collect();
        out.push_str(&items.join(", "));
        out.push_str("},\n");
        out.push_str(&format!("{indent}  \"histograms\": {{"));
        let items: Vec<String> = self
            .histograms
            .iter()
            .map(|(name, h)| {
                format!(
                    "\"{name}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                    h.count(),
                    h.percentile(50.0),
                    h.percentile(90.0),
                    h.percentile(99.0),
                    h.max()
                )
            })
            .collect();
        out.push_str(&items.join(", "));
        out.push_str("}\n");
        out.push_str(&format!("{indent}}}"));
        out
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(Histogram::quantize(v), v);
        }
    }

    #[test]
    fn quantize_bounds_relative_error() {
        for &v in &[128u64, 129, 1000, 4096, 65_537, 1 << 40, u64::MAX] {
            let q = Histogram::quantize(v);
            assert!(q <= v, "floor {q} above value {v}");
            // floor error is below one sub-bucket: v - q < v/64
            assert!(v - q <= v / 64, "error too large for {v}: floor {q}");
        }
    }

    #[test]
    fn bucket_floor_is_fixed_point() {
        // The floor of a bucket quantizes back to itself.
        for &v in &[0u64, 1, 127, 128, 200, 9999, 1 << 33, u64::MAX] {
            let q = Histogram::quantize(v);
            assert_eq!(Histogram::quantize(q), q);
        }
    }

    #[test]
    fn percentile_matches_nearest_rank_on_exact_values() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(90.0), 9);
        assert_eq!(h.percentile(100.0), 10);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        a.record(500);
        b.record(5);
        b.record_n(1 << 20, 3);
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.count(), 6);
        let mut swapped = b.clone();
        swapped.merge_from(&a);
        assert_eq!(merged, swapped);
    }

    #[test]
    fn registry_merge_is_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("x", 2);
        a.gauge_max("g", 7);
        a.record("h", 100);
        b.add("x", 3);
        b.add("y", 1);
        b.gauge_max("g", 5);
        b.record("h", 4000);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.digest(), ba.digest());
        assert_eq!(ab.counter("x"), 5);
        assert_eq!(ab.gauge("g"), 7);
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn digest_distinguishes_metric_kinds() {
        let mut a = MetricsRegistry::new();
        a.add("m", 3);
        let mut b = MetricsRegistry::new();
        b.gauge_max("m", 3);
        assert_ne!(a.digest(), b.digest());
    }
}
