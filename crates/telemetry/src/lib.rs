//! Deterministic virtual-time telemetry for the QRAM serving stack.
//!
//! Every latency/throughput claim in the reproduction is made on the
//! **virtual clock** (`Ticks`), and results are required to be
//! bit-identical for any worker/shot-thread/path-chunk count. This
//! crate extends that discipline from results to *observability*:
//!
//! * [`SpanTracer`] — per-request virtual-time intervals for each
//!   pipeline stage (admission, queue wait, batch formation, compile,
//!   execute), exported as a canonically-ordered event log with an
//!   fnv1a-64 digest that CI can diff across parallelism settings;
//! * [`MetricsRegistry`] — named counters, high-water gauges and
//!   log-linear [`Histogram`]s with deterministic (exactly associative)
//!   merge and a nearest-rank `percentile()` consistent with the bench
//!   crate's `report::percentile`;
//! * [`Recorder`] — the trait instrumentation sites call, with a
//!   zero-cost [`NoopRecorder`] default (every method an empty inline
//!   body, monomorphized away) and a [`TelemetryRecorder`] that feeds
//!   a registry plus a tracer;
//! * [`host_wall`] — the one audited gateway to host wall-clock time,
//!   so the determinism lint's allowlist shrinks to this single file.
//!
//! The crate is deliberately dependency-free (it sits below `qram-sim`
//! and `qram-service` in the workspace graph) and does all arithmetic
//! in integers: merging shard-local telemetry in any order yields
//! bit-identical state.

pub mod metrics;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry};
pub use trace::{
    AdmissionOutcome, FireReason, RouteReason, SpanEvent, SpanStage, SpanTracer, VerifyTag,
    SYNTHETIC_REQUEST_BASE,
};

/// Virtual time in ticks (1 tick = 1 virtual nanosecond), mirroring
/// `qram_service::Ticks` without depending on it.
pub type Ticks = u64;

/// fnv1a-64 over a byte stream — the same digest primitive the bench
/// harness uses for results, applied here to traces and metrics.
pub fn fnv1a_64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The audited host wall-clock read.
///
/// Virtual-time code must never observe host time; the determinism lint
/// enforces that workspace-wide. The two legitimate consumers — bench
/// harness "how long did the *host* take" columns and example binaries
/// printing runtimes for humans — route through this helper instead of
/// calling `Instant::now()` themselves, so the lint allowlist carries
/// exactly one entry: this file. The returned [`std::time::Instant`] is
/// only ever compared against itself (`elapsed()`); nothing derived
/// from it may flow into results, digests or schedules.
pub fn host_wall() -> std::time::Instant {
    std::time::Instant::now()
}

/// Canonical metric names, shared by recording sites and exporters so
/// the registry's key space stays consistent across crates.
pub mod key {
    /// Counter: arrivals admitted into the pending queue.
    pub const ADMISSION_ACCEPTED: &str = "admission.accepted";
    /// Counter: arrivals shed by the admission controller.
    pub const ADMISSION_SHED: &str = "admission.shed";
    /// Counter: arrivals rejected as malformed.
    pub const ADMISSION_REJECTED: &str = "admission.rejected";
    /// Counter: compiled-circuit cache lookups.
    pub const CACHE_LOOKUPS: &str = "cache.lookups";
    /// Counter: cache lookups served from the cache.
    pub const CACHE_HITS: &str = "cache.hits";
    /// Counter: cache lookups that had to compile.
    pub const CACHE_MISSES: &str = "cache.misses";
    /// Counter: compiled circuits evicted by the LRU policy.
    pub const CACHE_EVICTIONS: &str = "cache.evictions";
    /// Counter: per-batch reports dropped by the FIFO cap.
    pub const BATCH_REPORTS_DROPPED: &str = "service.batch_reports_dropped";
    /// Counter: requests that completed execution.
    pub const SERVICE_COMPLETED: &str = "service.completed";
    /// Counter: batches fired by the scheduler.
    pub const BATCHES_FIRED: &str = "service.batches_fired";
    /// Gauge: high-water mark of requests in the system.
    pub const QUEUE_DEPTH_HIGH_WATER: &str = "queue.depth.high_water";
    /// Histogram: per-request queue-wait ticks.
    pub const STAGE_QUEUE_WAIT: &str = "stage.queue_wait_ns";
    /// Histogram: per-request compile ticks.
    pub const STAGE_COMPILE: &str = "stage.compile_ns";
    /// Histogram: per-request execute ticks.
    pub const STAGE_EXECUTE: &str = "stage.execute_ns";
    /// Histogram: per-request end-to-end latency ticks.
    pub const STAGE_TOTAL: &str = "stage.total_ns";
    /// Histogram: batch sizes at fire time.
    pub const BATCH_SIZE: &str = "batch.size";
    /// Counter: work-conserving releases the cache-affine policy
    /// redirected to a younger cache-resident group.
    pub const POLICY_CACHE_AFFINE_FIRES: &str = "policy.cache_affine_fires";
    /// Counter: releases where the age cap forced the oldest group
    /// despite a younger cache-resident group pending.
    pub const POLICY_AGE_CAP_FORCED: &str = "policy.age_cap_forced";
    /// Counter: shots sampled by the simulation engine.
    pub const SIM_SHOTS: &str = "sim.shots";
    /// Counter: shots whose fault plan forced a path replay.
    pub const SIM_REPLAYED: &str = "sim.replayed_shots";
    /// Counter: faults injected across all shots.
    pub const SIM_FAULTS: &str = "sim.faults_injected";
    /// Counter: gate applications replayed by faulty shots.
    pub const SIM_GATES: &str = "sim.gate_applications";
    /// Counter: requests the fleet router placed on a shard.
    pub const FLEET_ROUTED: &str = "fleet.routed";
    /// Counter: requests shed at the fleet front door.
    pub const FLEET_SHED: &str = "fleet.shed";
    /// Counter: routes decided by a planner-informed family pin.
    pub const FLEET_PINNED_ROUTES: &str = "fleet.pinned_routes";
    /// Counter: replica routes whose tie-break was decided by the
    /// cache-residency probe (rather than the lowest-shard fallback).
    pub const FLEET_REPLICA_CACHE_WINS: &str = "fleet.replica_cache_wins";
    /// Gauge: high-water mark of the fleet front-door queue depth.
    pub const FLEET_FRONT_DEPTH_HIGH_WATER: &str = "fleet.front_depth.high_water";
}

/// The instrumentation interface threaded through the serving pipeline
/// and the simulation engine.
///
/// Sites call these methods unconditionally on hot paths; with the
/// [`NoopRecorder`] every call monomorphizes to an empty inline body,
/// so disabled telemetry costs nothing. Sites that would *allocate* to
/// build a payload (group-key strings, span structs) guard on
/// [`Recorder::enabled`] first.
pub trait Recorder {
    /// Whether recording is active. Sites use this to skip payload
    /// construction; the default is `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to a named counter.
    fn add(&mut self, name: &'static str, delta: u64);

    /// Raises a named high-water gauge to `value` if larger.
    fn gauge_max(&mut self, name: &'static str, value: u64);

    /// Records a sample into a named histogram.
    fn record(&mut self, name: &'static str, value: u64);

    /// Records one pipeline span.
    fn span(&mut self, event: SpanEvent);
}

/// The zero-cost default recorder: drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn add(&mut self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge_max(&mut self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn record(&mut self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn span(&mut self, _event: SpanEvent) {}
}

/// A recorder that captures everything: metrics into a
/// [`MetricsRegistry`], spans into a [`SpanTracer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryRecorder {
    metrics: MetricsRegistry,
    tracer: SpanTracer,
}

impl TelemetryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TelemetryRecorder::default()
    }

    /// The captured metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The captured span log.
    pub fn tracer(&self) -> &SpanTracer {
        &self.tracer
    }

    /// Digest of the canonical span log.
    pub fn trace_digest(&self) -> u64 {
        self.tracer.digest()
    }

    /// Digest of the captured metrics.
    pub fn metrics_digest(&self) -> u64 {
        self.metrics.digest()
    }
}

impl Recorder for TelemetryRecorder {
    fn add(&mut self, name: &'static str, delta: u64) {
        self.metrics.add(name, delta);
    }

    fn gauge_max(&mut self, name: &'static str, value: u64) {
        self.metrics.gauge_max(name, value);
    }

    fn record(&mut self, name: &'static str, value: u64) {
        self.metrics.record(name, value);
    }

    fn span(&mut self, event: SpanEvent) {
        self.tracer.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(*b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.add(key::SIM_SHOTS, 5);
        r.record(key::STAGE_TOTAL, 10);
        // Nothing to observe: the type holds no state at all.
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
    }

    #[test]
    fn telemetry_recorder_captures_everything() {
        let mut r = TelemetryRecorder::new();
        assert!(r.enabled());
        r.add(key::ADMISSION_ACCEPTED, 2);
        r.gauge_max(key::QUEUE_DEPTH_HIGH_WATER, 7);
        r.record(key::STAGE_TOTAL, 1234);
        r.span(SpanEvent {
            request: 1,
            start: 0,
            end: 5,
            stage: SpanStage::Execute { unit: 0, shots: 3 },
        });
        assert_eq!(r.metrics().counter(key::ADMISSION_ACCEPTED), 2);
        assert_eq!(r.metrics().gauge(key::QUEUE_DEPTH_HIGH_WATER), 7);
        assert_eq!(r.metrics().histogram(key::STAGE_TOTAL).unwrap().count(), 1);
        assert_eq!(r.tracer().len(), 1);
        assert_ne!(r.trace_digest(), SpanTracer::new().digest());
    }
}
