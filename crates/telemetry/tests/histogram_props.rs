//! Property tests for the telemetry primitives: histogram/registry
//! merge must be *exactly* associative and order-insensitive (integer
//! bucket arithmetic, no floating-point accumulation), and the span
//! digest must be a pure function of the event *set*.

use proptest::prelude::*;
use qram_telemetry::{Histogram, MetricsRegistry, SpanEvent, SpanStage, SpanTracer};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c), bit-for-bit.
    #[test]
    fn histogram_merge_is_associative(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge_from(&hb);
        left.merge_from(&hc);
        let mut right_inner = hb.clone();
        right_inner.merge_from(&hc);
        let mut right = ha.clone();
        right.merge_from(&right_inner);
        prop_assert_eq!(left, right);
    }

    /// a ∪ b == b ∪ a, and merging shards equals recording the
    /// concatenated samples directly, in any interleaving.
    #[test]
    fn histogram_merge_is_order_insensitive(
        a in arb_values(),
        b in arb_values(),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge_from(&hb);
        let mut ba = hb.clone();
        ba.merge_from(&ha);
        prop_assert_eq!(&ab, &ba);
        let mut all: Vec<u64> = a.clone();
        all.extend_from_slice(&b);
        all.reverse();
        prop_assert_eq!(&ab, &hist_of(&all));
        prop_assert_eq!(ab.count() as usize, a.len() + b.len());
    }

    /// Quantization is idempotent and never overshoots: the reported
    /// bucket floor is ≤ the value and within 1/64 relative error.
    #[test]
    fn quantize_is_sound(v in any::<u64>()) {
        let q = Histogram::quantize(v);
        prop_assert!(q <= v);
        prop_assert!(v - q <= v / 64);
        prop_assert_eq!(Histogram::quantize(q), q);
    }

    /// Registry merge (counters add, gauges max, histograms merge) is
    /// commutative with exact equality of state and digest.
    #[test]
    fn registry_merge_commutes(
        xs in arb_values(),
        ys in arb_values(),
        ca in any::<u32>(),
        cb in any::<u32>(),
    ) {
        let mut a = MetricsRegistry::new();
        a.add("c", u64::from(ca));
        a.gauge_max("g", u64::from(ca));
        for &v in &xs {
            a.record("h", v);
        }
        let mut b = MetricsRegistry::new();
        b.add("c", u64::from(cb));
        b.gauge_max("g", u64::from(cb));
        for &v in &ys {
            b.record("h", v);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.digest(), ba.digest());
        prop_assert_eq!(ab.counter("c"), u64::from(ca) + u64::from(cb));
        prop_assert_eq!(ab.gauge("g"), u64::from(ca).max(u64::from(cb)));
    }

    /// The trace digest depends only on the event set, not the order
    /// spans were pushed.
    #[test]
    fn trace_digest_ignores_push_order(
        starts in prop::collection::vec(0u64..1000, 1..20),
    ) {
        let spans: Vec<SpanEvent> = starts
            .iter()
            .enumerate()
            .map(|(i, &start)| SpanEvent {
                request: i as u64,
                start,
                end: start + 5,
                stage: SpanStage::Execute { unit: i as u64 % 2, shots: 4 },
            })
            .collect();
        let mut forward = SpanTracer::new();
        for s in &spans {
            forward.push(s.clone());
        }
        let mut reverse = SpanTracer::new();
        for s in spans.iter().rev() {
            reverse.push(s.clone());
        }
        prop_assert_eq!(forward.digest(), reverse.digest());
        prop_assert_eq!(forward.canonical(), reverse.canonical());
    }
}
