//! Fleet-scale QRAM serving: a sharded [`QramService`] fleet with
//! tenants, SLO classes, and deterministic routing.
//!
//! A [`FleetController`] owns N independent [`QramService`] shards —
//! each with its own device profile, compile cache, and cost
//! calibration — behind a single front door. Requests arrive tagged
//! with a [`TenantId`] and an [`SloClass`]; the front door parks them
//! in per-tenant sub-queues, drains them by deterministic weighted
//! round-robin, and places each on a shard via the consistent-hash
//! [`Router`] (planner pins + rendezvous replicas + cache-affine
//! tie-breaking). When the door overflows, the [`ShedPolicy`] picks
//! the victim — tail-drop or SLO-aware deadline priority.
//!
//! # Determinism contract
//!
//! The fleet interleaves shard virtual clocks by *event time*, not by
//! host scheduling: [`FleetController::advance_to`] repeatedly finds
//! the earliest pending event across all shards, polls exactly the
//! shards due at that instant, orders their completions by shard id,
//! and only then dispatches parked work into the freed room. Every
//! routing, queueing, and shedding decision reads virtual-time state
//! alone, so per-request results, span traces, and metrics are
//! bit-identical for any worker count, shot-thread count, path-chunk
//! count, and shard-poll iteration order.
//!
//! A single-shard fleet with an unbounded front door degenerates to
//! the bare service: same admissions at the same instants, same
//! results, same trace.

mod front;
mod router;

use std::collections::BTreeMap;

pub use front::{Pending, ShedPolicy};
pub use router::{RouteDecision, Router};

use front::FrontDoor;
use qram_core::Memory;
use qram_service::{
    Admission, QramService, QueryResult, QuerySpec, ServiceConfig, SloClass, TenantId, Ticks,
};
use qram_telemetry::{
    fnv1a_64, key, AdmissionOutcome, MetricsRegistry, NoopRecorder, Recorder, SpanEvent, SpanStage,
    TelemetryRecorder, SYNTHETIC_REQUEST_BASE,
};

/// The order [`FleetController`] iterates shards when several are due
/// at the same event instant. Results are re-ordered by shard id after
/// harvesting, so this knob must not — and provably does not — affect
/// any output (pinned by the fleet determinism tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPollOrder {
    /// Poll due shards in ascending id order (the default).
    #[default]
    Ascending,
    /// Poll due shards in descending id order.
    Descending,
}

/// Fleet topology and front-door policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards.
    pub shards: usize,
    /// Base per-shard service configuration; shard `i` runs it with
    /// `seed + i` unless overridden (shard 0 keeps the base verbatim,
    /// so a 1-shard fleet matches a bare service bit-for-bit).
    pub shard_base: ServiceConfig,
    /// Explicit per-shard configurations for heterogeneous fleets;
    /// entry `i` (when present) replaces the derived config of shard
    /// `i`.
    pub shard_overrides: Vec<ServiceConfig>,
    /// Requests the front door may hold beyond what shards have
    /// absorbed; an arrival that would exceed this triggers the shed
    /// policy. `0` means never park more than the overflow arrival
    /// itself (shed immediately when no shard has room).
    pub front_capacity: usize,
    /// Victim selection at front-door overflow.
    pub shed_policy: ShedPolicy,
    /// Rendezvous replication factor for unpinned specs (clamped to
    /// `1..=shards`).
    pub replication: usize,
    /// Pin the capacity planner's family split to dedicated shards.
    pub pin_planned: bool,
    /// Qubit budget handed to the planner when `pin_planned` is set.
    pub qubit_budget: usize,
    /// Iteration order over same-instant shards (output-invisible).
    pub poll_order: ShardPollOrder,
    /// Weighted-round-robin credits per tenant per round; tenants
    /// absent here get weight 1.
    pub tenant_weights: Vec<(TenantId, u32)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 1,
            shard_base: ServiceConfig::default(),
            shard_overrides: Vec::new(),
            front_capacity: 1024,
            shed_policy: ShedPolicy::default(),
            replication: 2,
            pin_planned: false,
            qubit_budget: qram_plan::UNLIMITED_BUDGET,
            poll_order: ShardPollOrder::default(),
            tenant_weights: Vec::new(),
        }
    }
}

impl FleetConfig {
    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the base per-shard service configuration.
    pub fn with_shard_base(mut self, base: ServiceConfig) -> Self {
        self.shard_base = base;
        self
    }

    /// Sets the front-door overflow capacity.
    pub fn with_front_capacity(mut self, capacity: usize) -> Self {
        self.front_capacity = capacity;
        self
    }

    /// Sets the overflow shed policy.
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Sets the rendezvous replication factor.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Enables planner-informed family pinning under `qubit_budget`.
    pub fn with_planned_pins(mut self, qubit_budget: usize) -> Self {
        self.pin_planned = true;
        self.qubit_budget = qubit_budget;
        self
    }

    /// Sets the same-instant shard iteration order.
    pub fn with_poll_order(mut self, order: ShardPollOrder) -> Self {
        self.poll_order = order;
        self
    }

    /// Sets `tenant`'s weighted-round-robin credits per round.
    pub fn with_tenant_weight(mut self, tenant: TenantId, weight: u32) -> Self {
        self.tenant_weights.retain(|(t, _)| *t != tenant);
        self.tenant_weights.push((tenant, weight));
        self
    }

    /// WRR credits for `tenant` (1 when unconfigured; a configured 0
    /// is clamped to 1 so no tenant starves).
    pub fn weight(&self, tenant: TenantId) -> u32 {
        self.tenant_weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, w)| (*w).max(1))
            .unwrap_or(1)
    }

    /// The effective service configuration of shard `sid`: the
    /// explicit override when present, else the base re-seeded with
    /// `seed + sid` (shard 0 keeps the base seed).
    pub fn shard_config(&self, sid: usize) -> ServiceConfig {
        if let Some(cfg) = self.shard_overrides.get(sid) {
            return *cfg;
        }
        self.shard_base.with_seed(self.shard_base.seed + sid as u64)
    }
}

/// The front door's verdict on one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontAdmission {
    /// Fleet-wide sequence number assigned to the offer.
    pub seq: u64,
    /// Whether this offer is still in the system (it may be queued or
    /// already forwarded; `false` means the offer itself was the shed
    /// victim).
    pub admitted: bool,
    /// The request shed to make room, if the offer overflowed the
    /// front door (possibly the offer itself).
    pub shed: Option<ShedDrop>,
}

/// A request dropped by the front-door shed policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedDrop {
    /// Fleet-wide sequence number of the dropped request.
    pub seq: u64,
    /// Tenant the dropped request belonged to.
    pub tenant: TenantId,
    /// SLO class the dropped request was offered under.
    pub slo: SloClass,
}

/// A completed fleet request: the shard-level [`QueryResult`] plus the
/// fleet-level placement and queueing context.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Fleet-wide sequence number (offer order at the front door).
    pub seq: u64,
    /// Shard that served the request.
    pub shard: usize,
    /// Tenant the request was served on behalf of.
    pub tenant: TenantId,
    /// SLO class the request was offered under.
    pub slo: SloClass,
    /// Virtual time spent parked at the front door before forwarding.
    pub front_wait: Ticks,
    /// The shard-level result (its `arrival` is the *forward* instant;
    /// see [`FleetResult::fleet_arrival`]).
    pub result: QueryResult,
}

impl FleetResult {
    /// Arrival instant at the fleet front door.
    pub fn fleet_arrival(&self) -> Ticks {
        self.result.arrival - self.front_wait
    }

    /// Door-to-completion latency: front-door wait plus shard queue
    /// wait, compile, and execute.
    pub fn total_latency(&self) -> Ticks {
        self.front_wait + self.result.latency.total()
    }

    /// Whether an interactive request met its deadline (measured from
    /// fleet arrival); `None` for classes without one.
    pub fn deadline_met(&self) -> Option<bool> {
        self.slo.deadline().map(|d| self.total_latency() <= d)
    }
}

/// Completion/shed tallies for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests completed for the tenant.
    pub completed: u64,
    /// Requests shed at the front door for the tenant.
    pub shed: u64,
}

/// Completion/shed/deadline tallies for one SLO class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests completed in the class.
    pub completed: u64,
    /// Requests shed at the front door in the class.
    pub shed: u64,
    /// Completed interactive requests that met their deadline.
    pub deadline_met: u64,
    /// Completed interactive requests that missed their deadline.
    pub deadline_missed: u64,
}

/// Aggregate front-door accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Requests offered to the front door.
    pub offered: u64,
    /// Requests forwarded to a shard.
    pub dispatched: u64,
    /// Requests completed by a shard.
    pub completed: u64,
    /// Requests shed at the front door.
    pub shed: u64,
    /// Per-tenant tallies.
    pub per_tenant: BTreeMap<TenantId, TenantStats>,
    /// Per-SLO-class tallies, keyed by [`SloClass::label`].
    pub per_class: BTreeMap<&'static str, ClassStats>,
}

impl FleetStats {
    fn note_shed(&mut self, tenant: TenantId, slo: SloClass) {
        self.shed += 1;
        self.per_tenant.entry(tenant).or_default().shed += 1;
        self.per_class.entry(slo.label()).or_default().shed += 1;
    }

    fn note_completion(&mut self, r: &FleetResult) {
        self.completed += 1;
        self.per_tenant.entry(r.tenant).or_default().completed += 1;
        let class = self.per_class.entry(r.slo.label()).or_default();
        class.completed += 1;
        match r.deadline_met() {
            Some(true) => class.deadline_met += 1,
            Some(false) => class.deadline_missed += 1,
            None => {}
        }
    }
}

/// Fleet-level bookkeeping for one forwarded request, keyed by
/// `(shard, shard-local request id)` until its result comes back.
#[derive(Debug, Clone, Copy)]
struct RequestMeta {
    seq: u64,
    tenant: TenantId,
    slo: SloClass,
    fleet_arrival: Ticks,
    forwarded: Ticks,
}

/// A deterministic virtual-time controller over a fleet of
/// [`QramService`] shards. See the [crate docs](crate) for the
/// architecture and determinism contract.
#[derive(Debug)]
pub struct FleetController<R: Recorder = NoopRecorder> {
    config: FleetConfig,
    shards: Vec<QramService<R>>,
    router: Router,
    front: FrontDoor,
    recorder: R,
    metrics: MetricsRegistry,
    address_width: usize,
    cells: u64,
    now: Ticks,
    next_seq: u64,
    meta: BTreeMap<(usize, u64), RequestMeta>,
    completed: Vec<FleetResult>,
    stats: FleetStats,
}

impl FleetController<NoopRecorder> {
    /// A fleet over `memory` with no telemetry. Every shard serves its
    /// own clone of the image.
    pub fn new(memory: Memory, config: FleetConfig) -> Self {
        Self::with_recorders(memory, config, |_| NoopRecorder)
    }
}

impl<R: Recorder> FleetController<R> {
    /// A fleet over `memory` with one recorder per shard plus one for
    /// the fleet front door. `mk` is called with each shard id in
    /// ascending order and finally with `config.shards` for the
    /// front-door recorder.
    pub fn with_recorders(
        memory: Memory,
        config: FleetConfig,
        mut mk: impl FnMut(usize) -> R,
    ) -> Self {
        assert!(config.shards > 0, "a fleet needs at least one shard");
        let shards: Vec<QramService<R>> = (0..config.shards)
            .map(|sid| {
                QramService::with_recorder(memory.clone(), config.shard_config(sid), mk(sid))
            })
            .collect();
        let mut router = Router::new(config.shards, config.replication);
        if config.pin_planned {
            router = router.with_planned_pins(memory.address_width(), config.qubit_budget);
        }
        FleetController {
            recorder: mk(config.shards),
            metrics: MetricsRegistry::default(),
            address_width: memory.address_width(),
            cells: memory.len() as u64,
            config,
            shards,
            router,
            front: FrontDoor::default(),
            now: 0,
            next_seq: 0,
            meta: BTreeMap::new(),
            completed: Vec::new(),
            stats: FleetStats::default(),
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The routing table.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The fleet's shards, in id order.
    pub fn shards(&self) -> &[QramService<R>] {
        &self.shards
    }

    /// The front-door recorder (routing spans and shed terminals).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Current fleet virtual-clock instant.
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Requests parked at the front door.
    pub fn front_depth(&self) -> usize {
        self.front.depth()
    }

    /// Aggregate front-door accounting so far.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Fleet front-door metrics merged with every shard's metrics.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut merged = self.metrics.clone();
        for shard in &self.shards {
            merged.merge_from(&shard.metrics_snapshot());
        }
        merged
    }

    /// Offers one request to the fleet at `arrival` on the virtual
    /// clock, advancing the fleet to that instant first. The request
    /// is forwarded immediately when its routed shard has room,
    /// otherwise parked at the front door; if parking overflows
    /// [`FleetConfig::front_capacity`], the shed policy drops a victim
    /// (possibly this offer).
    ///
    /// # Panics
    ///
    /// Panics when `spec` does not match the fleet's memory width or
    /// `address` is out of range — the fleet front door owns workload
    /// construction, so a malformed request is a harness bug, not
    /// back-pressure.
    pub fn submit_at(
        &mut self,
        address: u64,
        spec: QuerySpec,
        arrival: Ticks,
        tenant: TenantId,
        slo: SloClass,
    ) -> FrontAdmission {
        assert_eq!(
            spec.address_width(),
            self.address_width,
            "spec width must match the fleet memory"
        );
        assert!(
            address < self.cells,
            "address {address} out of range for {} cells",
            self.cells
        );
        self.advance_to(arrival);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.offered += 1;
        self.front.push(Pending {
            seq,
            address,
            spec,
            arrival,
            tenant,
            slo,
        });
        self.metrics
            .gauge_max(key::FLEET_FRONT_DEPTH_HIGH_WATER, self.front.depth() as u64);
        self.dispatch();
        let shed = if self.front.depth() > self.config.front_capacity {
            let victim = self
                .front
                .shed_victim(self.config.shed_policy, self.now)
                .expect("overflowing front door is non-empty");
            self.record_shed(&victim);
            Some(ShedDrop {
                seq: victim.seq,
                tenant: victim.tenant,
                slo: victim.slo,
            })
        } else {
            None
        };
        FrontAdmission {
            seq,
            admitted: shed.is_none_or(|s| s.seq != seq),
            shed,
        }
    }

    /// Advances the fleet virtual clock to `t`, processing every shard
    /// event (completions, batch deadlines, work-conserving releases)
    /// in global event order and dispatching parked front-door work
    /// into freed room as it appears.
    pub fn advance_to(&mut self, t: Ticks) {
        while let Some(tick) = self.next_tick(Some(t)) {
            self.process_tick(tick);
        }
        self.now = self.now.max(t);
    }

    /// Advances to `until` and returns every fleet result completed so
    /// far, ordered by completion instant (ties by shard id, then
    /// shard-local request id).
    pub fn poll(&mut self, until: Ticks) -> Vec<FleetResult> {
        self.advance_to(until);
        self.take_completed()
    }

    /// Runs the fleet to quiescence: drains the front door through
    /// shard events, then drains every shard (flushing partially-full
    /// batches exactly like the bare service's `run_until_idle`).
    /// Returns every remaining completed result.
    ///
    /// # Panics
    ///
    /// Panics if requests are parked at the front door while every
    /// shard is idle — impossible under the router's room predicate
    /// (a full shard always has a pending completion event).
    pub fn run_until_idle(&mut self) -> Vec<FleetResult> {
        while self.front.depth() > 0 {
            let tick = self
                .next_tick(None)
                .expect("front-door requests parked with every shard idle");
            self.process_tick(tick);
        }
        for sid in 0..self.shards.len() {
            let results = self.shards[sid].run_until_idle();
            for result in results {
                self.collect(sid, result);
            }
        }
        self.take_completed()
    }

    /// Completed results harvested so far, ordered by completion
    /// instant (ties by shard id, then shard-local request id).
    /// Clears the internal buffer.
    pub fn take_completed(&mut self) -> Vec<FleetResult> {
        self.completed
            .sort_by_key(|r| (r.result.completed, r.shard, r.result.id));
        std::mem::take(&mut self.completed)
    }

    /// The earliest pending event instant across all shards, filtered
    /// to `bound` when given.
    fn next_tick(&self, bound: Option<Ticks>) -> Option<Ticks> {
        let tick = self.shards.iter().filter_map(|s| s.next_event()).min()?;
        match bound {
            Some(b) if tick > b => None,
            _ => Some(tick),
        }
    }

    /// Polls every shard due at `tick` (in the configured — and
    /// output-invisible — iteration order), harvests their completions
    /// re-ordered by shard id, then dispatches parked work into
    /// whatever room the tick freed.
    fn process_tick(&mut self, tick: Ticks) {
        let order: Vec<usize> = match self.config.poll_order {
            ShardPollOrder::Ascending => (0..self.shards.len()).collect(),
            ShardPollOrder::Descending => (0..self.shards.len()).rev().collect(),
        };
        let mut harvested: Vec<(usize, Vec<QueryResult>)> = Vec::new();
        for sid in order {
            if self.shards[sid].next_event().is_some_and(|e| e <= tick) {
                harvested.push((sid, self.shards[sid].poll(tick)));
            }
        }
        harvested.sort_by_key(|(sid, _)| *sid);
        for (sid, results) in harvested {
            for result in results {
                self.collect(sid, result);
            }
        }
        self.now = self.now.max(tick);
        self.dispatch();
    }

    /// Weighted-round-robin drain of the front door: each round visits
    /// non-empty tenants in ascending id order, forwarding up to the
    /// tenant's weight in consecutive head requests; rounds repeat
    /// until one dispatches nothing (every head is routed to a full
    /// shard, or the door is empty).
    fn dispatch(&mut self) {
        loop {
            let mut dispatched_this_round = false;
            for tenant in self.front.tenants() {
                for _ in 0..self.config.weight(tenant) {
                    let Some(head) = self.front.head(tenant) else {
                        break;
                    };
                    let Some(decision) = self.router.route(&head.spec, &self.shards) else {
                        break;
                    };
                    let pending = self.front.pop(tenant).expect("head exists");
                    self.forward(pending, decision);
                    dispatched_this_round = true;
                }
            }
            if !dispatched_this_round {
                return;
            }
        }
    }

    /// Forwards one parked request to its routed shard, recording the
    /// route span and placement metrics.
    fn forward(&mut self, p: Pending, decision: RouteDecision) {
        let forward_at = p.arrival.max(self.now);
        self.metrics.add(key::FLEET_ROUTED, 1);
        match decision.reason {
            qram_telemetry::RouteReason::Pinned => self.metrics.add(key::FLEET_PINNED_ROUTES, 1),
            qram_telemetry::RouteReason::Replica => {
                self.metrics.add(key::FLEET_REPLICA_CACHE_WINS, 1)
            }
            qram_telemetry::RouteReason::Hash => {}
        }
        if self.recorder.enabled() {
            self.recorder.span(SpanEvent {
                request: p.seq,
                start: p.arrival,
                end: forward_at,
                stage: SpanStage::Route {
                    shard: decision.shard as u64,
                    reason: decision.reason,
                },
            });
        }
        let admission = self.shards[decision.shard]
            .try_submit_tagged_at(p.address, p.spec, forward_at, p.tenant, p.slo);
        let Admission::Accepted(id) = admission else {
            unreachable!("router verified room and the door verified the spec: {admission:?}")
        };
        self.meta.insert(
            (decision.shard, id),
            RequestMeta {
                seq: p.seq,
                tenant: p.tenant,
                slo: p.slo,
                fleet_arrival: p.arrival,
                forwarded: forward_at,
            },
        );
        self.stats.dispatched += 1;
    }

    /// Joins a shard completion with its fleet-level metadata.
    fn collect(&mut self, sid: usize, result: QueryResult) {
        let meta = self
            .meta
            .remove(&(sid, result.id))
            .expect("completion for a request the fleet forwarded");
        let fleet_result = FleetResult {
            seq: meta.seq,
            shard: sid,
            tenant: meta.tenant,
            slo: meta.slo,
            front_wait: meta.forwarded - meta.fleet_arrival,
            result,
        };
        self.stats.note_completion(&fleet_result);
        self.completed.push(fleet_result);
    }

    /// Accounts one front-door shed: counter, per-tenant/per-class
    /// tallies, and a synthetic terminal span mirroring the bare
    /// service's shed accounting.
    fn record_shed(&mut self, victim: &Pending) {
        let ordinal = self.stats.shed;
        self.stats.note_shed(victim.tenant, victim.slo);
        self.metrics.add(key::FLEET_SHED, 1);
        if self.recorder.enabled() {
            self.recorder.span(SpanEvent {
                request: SYNTHETIC_REQUEST_BASE + ordinal,
                start: self.now,
                end: self.now,
                stage: SpanStage::Admission {
                    outcome: AdmissionOutcome::Shed,
                    queue_depth: self.front.depth() as u64,
                },
            });
        }
    }
}

impl FleetController<TelemetryRecorder> {
    /// A fleet with a [`TelemetryRecorder`] per shard and one for the
    /// front door.
    pub fn with_telemetry(memory: Memory, config: FleetConfig) -> Self {
        Self::with_recorders(memory, config, |_| TelemetryRecorder::default())
    }

    /// Order-insensitive digest over every span in the fleet: each
    /// shard's trace digest in shard order, chained with the front
    /// door's.
    pub fn trace_digest(&self) -> u64 {
        let mut bytes = Vec::new();
        for shard in &self.shards {
            bytes.extend_from_slice(&shard.recorder().trace_digest().to_le_bytes());
        }
        bytes.extend_from_slice(&self.recorder.trace_digest().to_le_bytes());
        fnv1a_64(bytes)
    }

    /// Digest over the merged fleet + shard metrics snapshot.
    pub fn metrics_digest(&self) -> u64 {
        self.metrics_snapshot().digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory(n: usize) -> Memory {
        Memory::from_bits((0..1usize << n).map(|i| i % 3 == 0))
    }

    fn base_config(shards: usize) -> FleetConfig {
        FleetConfig::default()
            .with_shards(shards)
            .with_shard_base(ServiceConfig::default().with_shots(0))
    }

    #[test]
    fn single_request_round_trips_with_route_metadata() {
        let mut fleet = FleetController::new(memory(3), base_config(2));
        let spec = QuerySpec::new(1, 2);
        let admission = fleet.submit_at(3, spec, 100, TenantId(1), SloClass::Batch);
        assert!(admission.admitted);
        assert_eq!(admission.seq, 0);
        let results = fleet.run_until_idle();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.seq, 0);
        assert_eq!(r.tenant, TenantId(1));
        assert_eq!(r.slo, SloClass::Batch);
        assert_eq!(r.front_wait, 0);
        assert_eq!(r.fleet_arrival(), 100);
        assert!(r.result.value, "memory bit 3 is set (3 % 3 == 0)");
        assert_eq!(fleet.stats().completed, 1);
        assert_eq!(fleet.stats().per_tenant[&TenantId(1)].completed, 1);
    }

    #[test]
    fn tenant_assignment_is_deterministic_across_poll_orders() {
        let specs = qram_service::mixed_arch_specs(3);
        let run = |order: ShardPollOrder| {
            let mut fleet = FleetController::new(
                memory(3),
                base_config(3).with_poll_order(order).with_replication(2),
            );
            for i in 0..200u64 {
                let spec = specs[(i % specs.len() as u64) as usize];
                fleet.submit_at(
                    i % 8,
                    spec,
                    i * 500,
                    TenantId((i % 3) as u32),
                    SloClass::BestEffort,
                );
            }
            let results = fleet.run_until_idle();
            results
                .iter()
                .map(|r| (r.seq, r.shard, r.tenant, r.result.completed))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(ShardPollOrder::Ascending),
            run(ShardPollOrder::Descending)
        );
    }

    #[test]
    fn equal_weight_tenants_complete_within_one_round_of_each_other() {
        // Saturate a tiny fleet so the front door arbitrates, then
        // check WRR kept equal-weight tenants balanced.
        let config = base_config(1)
            .with_shard_base(
                ServiceConfig::default()
                    .with_shots(0)
                    .with_workers(1)
                    .with_queue_capacity(2),
            )
            .with_front_capacity(400);
        let mut fleet = FleetController::new(memory(3), config);
        for i in 0..300u64 {
            fleet.submit_at(
                i % 8,
                QuerySpec::new(1, 2),
                i, // near-simultaneous burst
                TenantId((i % 2) as u32),
                SloClass::BestEffort,
            );
        }
        let results = fleet.run_until_idle();
        let count = |t: u32| results.iter().filter(|r| r.tenant == TenantId(t)).count();
        assert_eq!(fleet.stats().shed, 0);
        let (a, b) = (count(0), count(1));
        assert_eq!(a + b, 300);
        assert!(
            a.abs_diff(b) <= fleet.config().shard_base.batch_limit,
            "equal-weight tenants diverged: {a} vs {b}"
        );
    }

    #[test]
    fn front_capacity_zero_sheds_when_no_shard_has_room() {
        let config = base_config(1)
            .with_shard_base(
                ServiceConfig::default()
                    .with_shots(0)
                    .with_workers(1)
                    .with_queue_capacity(1),
            )
            .with_front_capacity(0)
            .with_shed_policy(ShedPolicy::TailDrop);
        let mut fleet = FleetController::new(memory(3), config);
        let first = fleet.submit_at(0, QuerySpec::new(1, 2), 0, TenantId(0), SloClass::Batch);
        assert!(first.admitted);
        // Same instant: the shard is full, the door holds nothing.
        let second = fleet.submit_at(1, QuerySpec::new(1, 2), 0, TenantId(0), SloClass::Batch);
        assert!(!second.admitted);
        assert_eq!(second.shed.unwrap().seq, second.seq);
        assert_eq!(fleet.stats().shed, 1);
        let results = fleet.run_until_idle();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn deadline_priority_displaces_batch_for_interactive() {
        let config = base_config(1)
            .with_shard_base(
                ServiceConfig::default()
                    .with_shots(0)
                    .with_workers(1)
                    .with_queue_capacity(1),
            )
            .with_front_capacity(1)
            .with_shed_policy(ShedPolicy::DeadlinePriority);
        let mut fleet = FleetController::new(memory(3), config);
        fleet.submit_at(0, QuerySpec::new(1, 2), 0, TenantId(0), SloClass::Batch);
        // Parks at the door (shard full), within capacity.
        let parked = fleet.submit_at(1, QuerySpec::new(1, 2), 0, TenantId(0), SloClass::Batch);
        assert!(parked.admitted && parked.shed.is_none());
        // Overflows: the parked batch request is displaced, not the
        // interactive newcomer.
        let urgent = fleet.submit_at(
            2,
            QuerySpec::new(1, 2),
            0,
            TenantId(1),
            SloClass::Interactive {
                deadline: 1_000_000,
            },
        );
        assert!(urgent.admitted);
        assert_eq!(urgent.shed.unwrap().seq, parked.seq);
        assert_eq!(fleet.stats().per_class["batch"].shed, 1);
    }

    #[test]
    fn metrics_snapshot_merges_fleet_and_shard_counters() {
        let mut fleet = FleetController::new(memory(3), base_config(2));
        for i in 0..10u64 {
            fleet.submit_at(
                i % 8,
                QuerySpec::new(1, 2),
                i * 1_000,
                TenantId(0),
                SloClass::Batch,
            );
        }
        fleet.run_until_idle();
        let merged = fleet.metrics_snapshot();
        assert_eq!(merged.counter(key::FLEET_ROUTED), 10);
        assert_eq!(merged.counter(key::ADMISSION_ACCEPTED), 10);
    }
}
