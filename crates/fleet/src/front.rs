//! The fleet front door: per-tenant sub-queues with SLO-aware shedding.
//!
//! A bare [`qram_service::QramService`] has a single global bounded
//! admission queue: under overload the newest arrival is dropped,
//! whatever its class. The fleet front door replaces that with
//! per-tenant FIFO sub-queues drained by deterministic weighted
//! round-robin (see [`crate::FleetController`]), and an overflow policy
//! that can pick its victim by *retention value* instead of arrival
//! order: [`ShedPolicy::DeadlinePriority`] first trims zombies whose
//! deadline has already passed, then drops batch work, then
//! best-effort, and keeps live interactive requests for last.
//!
//! Everything here reads only virtual-time state — queue contents,
//! arrival instants, per-request SLO tags — so every decision is
//! bit-reproducible across host-parallelism knobs and shard-poll
//! interleavings.

use std::collections::{BTreeMap, VecDeque};

use qram_service::{QuerySpec, SloClass, TenantId, Ticks};

/// What the front door does when an arrival overflows its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Drop the newest queued request (the incoming one) — the bare
    /// service's bounded-queue behavior, lifted to the fleet door.
    TailDrop,
    /// Drop the queued request with the least retention value. Zombies
    /// — requests whose deadline has already passed, which can no
    /// longer deliver any SLO value — go first. Among live requests:
    /// lowest [`SloClass::shed_rank`] first (`Batch`, then
    /// `BestEffort`, then `Interactive`); within a rank the *earliest*
    /// absolute deadline — under overload that request is the most
    /// likely to miss anyway, and for deadline-less classes
    /// (deadline = ∞) the rule degrades to dropping the oldest
    /// arrival, which clears head-of-line blocking in front of
    /// deadline work. The default.
    #[default]
    DeadlinePriority,
}

impl ShedPolicy {
    /// Stable label used in reports and JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            ShedPolicy::TailDrop => "tail-drop",
            ShedPolicy::DeadlinePriority => "deadline-priority",
        }
    }
}

/// One request parked at the front door, waiting for its routed shard
/// to have room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// Fleet-wide sequence number (offer order).
    pub seq: u64,
    /// The memory address to read.
    pub address: u64,
    /// The compilation profile serving the request.
    pub spec: QuerySpec,
    /// Arrival instant at the fleet door on the virtual clock.
    pub arrival: Ticks,
    /// The tenant the request is served on behalf of.
    pub tenant: TenantId,
    /// The SLO class the request was offered under.
    pub slo: SloClass,
}

impl Pending {
    /// Absolute completion deadline on the virtual clock
    /// (`Ticks::MAX` for classes without one) — the shed comparator's
    /// slack measure.
    fn absolute_deadline(&self) -> Ticks {
        match self.slo.deadline() {
            Some(d) => self.arrival.saturating_add(d),
            None => Ticks::MAX,
        }
    }

    /// Whether the request's deadline has already passed at `now` —
    /// completing it has zero SLO value (a zombie).
    fn expired(&self, now: Ticks) -> bool {
        now > self.absolute_deadline()
    }

    /// Shed preference key: the *maximum* over queued requests is the
    /// victim. Zombies (deadline already missed at `now`) go first —
    /// earliest deadline, then earliest arrival. Live requests order by
    /// lowest retention rank, then earliest absolute deadline (most
    /// doomed), then earliest arrival (stalest), then earliest
    /// sequence number.
    #[allow(clippy::type_complexity)]
    fn shed_key(
        &self,
        now: Ticks,
    ) -> (
        bool,
        std::cmp::Reverse<u8>,
        std::cmp::Reverse<Ticks>,
        std::cmp::Reverse<Ticks>,
        std::cmp::Reverse<u64>,
    ) {
        let expired = self.expired(now);
        (
            expired,
            std::cmp::Reverse(if expired { 0 } else { self.slo.shed_rank() }),
            std::cmp::Reverse(self.absolute_deadline()),
            std::cmp::Reverse(self.arrival),
            std::cmp::Reverse(self.seq),
        )
    }
}

/// Per-tenant FIFO sub-queues with a total-depth bound enforced by the
/// controller (the door itself never refuses a push — overflow
/// resolution picks the victim *after* the arrival joins, so an
/// incoming high-retention request can displace a queued low-retention
/// one).
#[derive(Debug, Clone, Default)]
pub(crate) struct FrontDoor {
    queues: BTreeMap<TenantId, VecDeque<Pending>>,
    depth: usize,
}

impl FrontDoor {
    /// Total requests parked across all tenant sub-queues.
    pub(crate) fn depth(&self) -> usize {
        self.depth
    }

    /// Appends a request to its tenant's sub-queue.
    pub(crate) fn push(&mut self, pending: Pending) {
        self.queues
            .entry(pending.tenant)
            .or_default()
            .push_back(pending);
        self.depth += 1;
    }

    /// Tenants with a non-empty sub-queue, in ascending id order — the
    /// deterministic round-robin rotation.
    pub(crate) fn tenants(&self) -> Vec<TenantId> {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&t, _)| t)
            .collect()
    }

    /// The head of `tenant`'s sub-queue, if any.
    pub(crate) fn head(&self, tenant: TenantId) -> Option<&Pending> {
        self.queues.get(&tenant).and_then(|q| q.front())
    }

    /// Removes and returns the head of `tenant`'s sub-queue.
    pub(crate) fn pop(&mut self, tenant: TenantId) -> Option<Pending> {
        let popped = self.queues.get_mut(&tenant)?.pop_front();
        if popped.is_some() {
            self.depth -= 1;
        }
        popped
    }

    /// Removes and returns the overflow victim under `policy` at the
    /// virtual instant `now` (`None` on an empty door).
    pub(crate) fn shed_victim(&mut self, policy: ShedPolicy, now: Ticks) -> Option<Pending> {
        let victim = match policy {
            // The newest offer fleet-wide: the largest sequence number.
            ShedPolicy::TailDrop => self
                .queues
                .values()
                .flatten()
                .max_by_key(|p| p.seq)
                .copied()?,
            ShedPolicy::DeadlinePriority => self
                .queues
                .values()
                .flatten()
                .max_by_key(|p| p.shed_key(now))
                .copied()?,
        };
        let queue = self
            .queues
            .get_mut(&victim.tenant)
            .expect("victim's tenant queue exists");
        let pos = queue
            .iter()
            .position(|p| p.seq == victim.seq)
            .expect("victim is queued");
        queue.remove(pos);
        self.depth -= 1;
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(seq: u64, arrival: Ticks, tenant: u32, slo: SloClass) -> Pending {
        Pending {
            seq,
            address: seq,
            spec: QuerySpec::new(1, 2),
            arrival,
            tenant: TenantId(tenant),
            slo,
        }
    }

    #[test]
    fn tail_drop_sheds_the_newest_offer() {
        let mut door = FrontDoor::default();
        door.push(pending(0, 10, 0, SloClass::Interactive { deadline: 5 }));
        door.push(pending(1, 20, 1, SloClass::Batch));
        door.push(pending(2, 30, 0, SloClass::Interactive { deadline: 5 }));
        let victim = door.shed_victim(ShedPolicy::TailDrop, 0).unwrap();
        assert_eq!(victim.seq, 2);
        assert_eq!(door.depth(), 2);
    }

    #[test]
    fn deadline_priority_sheds_batch_before_best_effort_before_interactive() {
        let mut door = FrontDoor::default();
        door.push(pending(0, 0, 0, SloClass::Interactive { deadline: 100 }));
        door.push(pending(1, 0, 1, SloClass::BestEffort));
        door.push(pending(2, 0, 2, SloClass::Batch));
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 0)
                .unwrap()
                .seq,
            2
        );
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 0)
                .unwrap()
                .seq,
            1
        );
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 0)
                .unwrap()
                .seq,
            0
        );
        assert!(door.shed_victim(ShedPolicy::DeadlinePriority, 0).is_none());
    }

    #[test]
    fn deadline_priority_sheds_the_most_doomed_interactive_request() {
        let mut door = FrontDoor::default();
        // Same class and arrival: the tightest deadline (most likely
        // already doomed under overload) goes first.
        door.push(pending(0, 0, 0, SloClass::Interactive { deadline: 50 }));
        door.push(pending(1, 0, 1, SloClass::Interactive { deadline: 5_000 }));
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 0)
                .unwrap()
                .seq,
            0
        );
        // Equal deadlines: the stalest (earliest) arrival goes first.
        door.push(pending(2, 40, 1, SloClass::Interactive { deadline: 5_000 }));
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 0)
                .unwrap()
                .seq,
            1
        );
    }

    #[test]
    fn deadline_priority_sheds_the_stalest_batch_request_first() {
        // Deadline-less classes degrade to oldest-first: the batch
        // request blocking the head of the line is the victim.
        let mut door = FrontDoor::default();
        door.push(pending(0, 10, 0, SloClass::Batch));
        door.push(pending(1, 20, 0, SloClass::Batch));
        door.push(pending(2, 30, 1, SloClass::Batch));
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 0)
                .unwrap()
                .seq,
            0
        );
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 0)
                .unwrap()
                .seq,
            1
        );
    }

    #[test]
    fn deadline_priority_trims_zombies_before_live_batch_work() {
        let mut door = FrontDoor::default();
        door.push(pending(0, 0, 0, SloClass::Batch));
        door.push(pending(1, 0, 1, SloClass::Interactive { deadline: 100 }));
        door.push(pending(2, 0, 2, SloClass::Interactive { deadline: 9_000 }));
        // At now = 500 the first interactive request has already missed
        // its deadline: completing it has no SLO value, so it goes
        // before even the batch request.
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 500)
                .unwrap()
                .seq,
            1
        );
        // With no zombies left, the live ordering resumes: batch first.
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 500)
                .unwrap()
                .seq,
            0
        );
        assert_eq!(
            door.shed_victim(ShedPolicy::DeadlinePriority, 500)
                .unwrap()
                .seq,
            2
        );
    }

    #[test]
    fn round_robin_rotation_is_sorted_by_tenant_id() {
        let mut door = FrontDoor::default();
        door.push(pending(0, 0, 7, SloClass::BestEffort));
        door.push(pending(1, 0, 2, SloClass::BestEffort));
        door.push(pending(2, 0, 4, SloClass::BestEffort));
        assert_eq!(door.tenants(), vec![TenantId(2), TenantId(4), TenantId(7)]);
        assert_eq!(door.head(TenantId(4)).unwrap().seq, 2);
        assert_eq!(door.pop(TenantId(4)).unwrap().seq, 2);
        assert_eq!(door.tenants(), vec![TenantId(2), TenantId(7)]);
        assert!(door.pop(TenantId(4)).is_none());
    }
}
