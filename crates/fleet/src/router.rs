//! Deterministic request placement across fleet shards.
//!
//! Placement is pure arithmetic over the request's [`QuerySpec`] and
//! the shards' *virtual-time* state, so the same arrival stream always
//! lands on the same shards regardless of host parallelism:
//!
//! 1. **Planner pins** — when enabled, the capacity planner's family
//!    split ([`qram_plan::planned_families`]) pins each planned family
//!    to a dedicated shard round-robin; pinned specs wait at the front
//!    door for *their* shard rather than spilling elsewhere (keeping
//!    each pinned shard's compile cache hot for its family).
//! 2. **Rendezvous replicas** — every other spec gets a rendezvous
//!    (highest-random-weight) candidate list of `replication` distinct
//!    shards; the same spec always produces the same ordered list.
//! 3. **Cache-affine tie-breaking** — among candidates with queue
//!    room, a shard whose [`qram_service::QramService::cache_contains`]
//!    probe already holds the compiled circuit wins over the primary
//!    (a [`RouteReason::Replica`] placement); otherwise the first
//!    candidate with room wins ([`RouteReason::Hash`]).

use qram_service::{QramService, QuerySpec, Recorder};
use qram_telemetry::{fnv1a_64, RouteReason};

/// Where a request was placed and why — mirrored into the routed
/// request's `SpanStage::Route` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Index of the destination shard.
    pub shard: usize,
    /// Why that shard won.
    pub reason: RouteReason,
}

/// Deterministic consistent-hash router with planner pins and
/// cache-affine replica selection.
#[derive(Debug, Clone)]
pub struct Router {
    shards: usize,
    replication: usize,
    pins: Vec<(QuerySpec, usize)>,
}

/// Canonical routing key for a spec: FNV-1a over its debug rendering,
/// which covers family, shape, optimization preset, and encoding.
fn spec_key(spec: &QuerySpec) -> u64 {
    fnv1a_64(format!("{:?}", spec.arch).into_bytes())
}

impl Router {
    /// A router over `shards` shards replicating each unpinned spec
    /// across `replication` rendezvous candidates (clamped to
    /// `1..=shards`), with no planner pins.
    pub fn new(shards: usize, replication: usize) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        Router {
            shards,
            replication: replication.clamp(1, shards),
            pins: Vec::new(),
        }
    }

    /// Pins the capacity planner's family split for width `n` under
    /// `qubit_budget` to dedicated shards, round-robin in plan order.
    pub fn with_planned_pins(mut self, n: usize, qubit_budget: usize) -> Self {
        self.pins = qram_plan::planned_families(n, qubit_budget)
            .into_iter()
            .enumerate()
            .map(|(i, arch)| (QuerySpec::of(arch), i % self.shards))
            .collect();
        self
    }

    /// The planner pins in effect, as `(spec, shard)` pairs.
    pub fn pins(&self) -> &[(QuerySpec, usize)] {
        &self.pins
    }

    /// The ordered rendezvous candidate list for `spec`: shards scored
    /// by `fnv1a(key || shard)`, highest first (ties broken by lower
    /// shard id), truncated to the replication factor.
    pub fn replica_set(&self, spec: &QuerySpec) -> Vec<usize> {
        let key = spec_key(spec);
        let mut scored: Vec<(u64, usize)> = (0..self.shards)
            .map(|sid| {
                let mut bytes = key.to_le_bytes().to_vec();
                bytes.extend_from_slice(&(sid as u64).to_le_bytes());
                (fnv1a_64(bytes), sid)
            })
            .collect();
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(self.replication)
            .map(|(_, sid)| sid)
            .collect()
    }

    /// Places `spec` on a shard with queue room, or `None` when every
    /// eligible shard is full (the request waits at the front door).
    ///
    /// Pinned specs are strict: only their pinned shard is eligible.
    /// Unpinned specs prefer a rendezvous candidate whose cache already
    /// holds the compiled circuit; otherwise the first candidate with
    /// room.
    pub fn route<R: Recorder>(
        &self,
        spec: &QuerySpec,
        shards: &[QramService<R>],
    ) -> Option<RouteDecision> {
        debug_assert_eq!(shards.len(), self.shards);
        let room = |sid: usize| shards[sid].in_system() < shards[sid].config().queue_capacity;

        if let Some(&(_, pinned)) = self.pins.iter().find(|(p, _)| p == spec) {
            return room(pinned).then_some(RouteDecision {
                shard: pinned,
                reason: RouteReason::Pinned,
            });
        }

        let candidates = self.replica_set(spec);
        let primary = candidates.iter().copied().find(|&sid| room(sid));
        let cached = candidates
            .iter()
            .copied()
            .find(|&sid| room(sid) && shards[sid].cache_contains(spec));
        match (cached, primary) {
            (Some(c), Some(p)) if c != p => Some(RouteDecision {
                shard: c,
                reason: RouteReason::Replica,
            }),
            (_, Some(p)) => Some(RouteDecision {
                shard: p,
                reason: RouteReason::Hash,
            }),
            (_, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_core::ArchSpec;
    use qram_plan::UNLIMITED_BUDGET;

    #[test]
    fn replica_sets_are_deterministic_and_distinct() {
        let router = Router::new(8, 3);
        let spec = QuerySpec::new(1, 4);
        let a = router.replica_set(&spec);
        let b = router.replica_set(&spec);
        assert_eq!(a, b, "same spec must always produce the same candidates");
        assert_eq!(a.len(), 3);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "candidates must be distinct shards");
    }

    #[test]
    fn replication_factor_is_clamped_to_fleet_size() {
        let router = Router::new(2, 9);
        assert_eq!(router.replica_set(&QuerySpec::new(1, 2)).len(), 2);
        let single = Router::new(1, 0);
        assert_eq!(single.replica_set(&QuerySpec::new(1, 2)), vec![0]);
    }

    #[test]
    fn distinct_specs_spread_over_shards() {
        let router = Router::new(4, 1);
        let mut hit = [false; 4];
        for spec in qram_service::mixed_arch_specs(4) {
            hit[router.replica_set(&spec)[0]] = true;
        }
        assert!(
            hit.iter().filter(|&&h| h).count() >= 2,
            "the family mix should not all hash to one shard: {hit:?}"
        );
    }

    #[test]
    fn planned_pins_cover_the_plan_round_robin() {
        let router = Router::new(2, 1).with_planned_pins(4, UNLIMITED_BUDGET);
        let pins = router.pins();
        assert_eq!(
            pins.len(),
            qram_plan::planned_families(4, UNLIMITED_BUDGET).len()
        );
        for (i, (spec, shard)) in pins.iter().enumerate() {
            assert_eq!(*shard, i % 2);
            assert_eq!(spec.arch.address_width(), 4);
        }
    }

    #[test]
    fn pinned_spec_routes_to_its_pinned_shard() {
        let router = Router::new(2, 2).with_planned_pins(3, UNLIMITED_BUDGET);
        let (spec, pinned) = router.pins()[1];
        let memory = qram_core::Memory::from_bits((0..8).map(|i| i % 2 == 0));
        let shards = vec![
            QramService::new(memory.clone(), Default::default()),
            QramService::new(memory, Default::default()),
        ];
        let decision = router.route(&spec, &shards).unwrap();
        assert_eq!(decision.shard, pinned);
        assert_eq!(decision.reason, RouteReason::Pinned);
    }

    #[test]
    fn unpinned_spec_routes_to_its_primary_with_hash_reason() {
        let router = Router::new(3, 2);
        let spec = QuerySpec::of(ArchSpec::BucketBrigade { k: 1, m: 2 });
        let memory = qram_core::Memory::from_bits((0..8).map(|i| i % 2 == 0));
        let shards: Vec<QramService> = (0..3)
            .map(|_| QramService::new(memory.clone(), Default::default()))
            .collect();
        let decision = router.route(&spec, &shards).unwrap();
        assert_eq!(decision.shard, router.replica_set(&spec)[0]);
        assert_eq!(decision.reason, RouteReason::Hash);
    }
}
