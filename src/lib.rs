//! End-to-end systems architecture for quantum random access memory (QRAM).
//!
//! This crate is the facade of the workspace reproducing the MICRO '23
//! paper *Systems Architecture for Quantum Random Access Memory*
//! (Xu, Hann, Foxman, Girvin, Ding). It re-exports the sub-crates:
//!
//! * [`circuit`] — quantum circuit IR, scheduling and Clifford+T resources.
//! * [`sim`] — Feynman-path simulator for classical-reversible circuits
//!   under Pauli noise.
//! * [`noise`] — noise channels, gate-based Monte-Carlo error models and
//!   synthetic device models.
//! * [`layout`] — 2D grid mapping via H-tree embedding, swap- vs
//!   teleportation-based routing.
//! * [`qec`] — surface-code logical error model and the paper's asymmetric
//!   code-distance prescription.
//! * [`core`] — the QRAM architectures: the paper's *virtual QRAM*
//!   contribution and all evaluated baselines (SQC, fanout, bucket-brigade,
//!   select-swap).
//! * [`plan`] — the offline `(k, m)` capacity planner: sweeps every
//!   legal split of every architecture family through the serving
//!   compiler's pricing pipeline and reports the Pareto frontier over
//!   (compile ticks, execute ticks/shot, qubits) plus the
//!   budget-optimal representative of each family — the planned
//!   replacement for hard-coded `k = 1` comparisons.
//! * [`service`] — the architecture-polymorphic, event-driven
//!   query-serving pipeline on a virtual clock: any `ArchSpec` served
//!   through bounded non-blocking admission with back-pressure,
//!   deadline-aware work-conserving batching, a staged compiler
//!   (`spec → circuit → resources → cost`) behind an LRU cache, a
//!   deterministic work-stealing executor with honest
//!   resource-calibrated latency breakdowns, and workload generators
//!   (Poisson/bursty arrivals, zipf-skewed addresses and specs,
//!   closed-feedback clients).
//! * [`fleet`] — fleet-scale serving: a deterministic virtual-time
//!   controller over N independent service shards (each with its own
//!   device profile, cache, and cost calibration) behind one front
//!   door. Requests carry tenant and SLO-class tags; placement is
//!   consistent-hash routing with planner-informed family pinning,
//!   rendezvous replication, and cache-affine tie-breaking; the door
//!   runs per-tenant weighted fair queueing and SLO-aware shedding
//!   (deadline-priority vs tail-drop). Fleet outputs are bit-identical
//!   across every host-parallelism knob and shard-poll interleaving,
//!   and a 1-shard fleet degenerates to the bare service.
//! * [`telemetry`] — deterministic observability: a span tracer keyed
//!   by request id recording virtual-time intervals for every pipeline
//!   stage, a metrics registry of counters / gauges / log-linear
//!   histograms with exact deterministic merges, and the `Recorder`
//!   trait the service is generic over (zero-cost `NoopRecorder` by
//!   default). Trace digests are bit-identical across worker, shot-
//!   thread and path-chunk counts.
//! * [`verify`] — static verification: a circuit analyzer (qubit
//!   bounds, operand overlap, per-family gate-set legality, ancilla
//!   lifecycle, independent resource recertification) run on every
//!   compiled artifact before it may enter the serving cache, and a
//!   source-level determinism lint (wall-clock reads, unseeded RNG,
//!   hash-order iteration) with an audited allowlist. The `verify_all`
//!   binary certifies the whole architecture matrix in CI.
//!
//! # Quickstart
//!
//! ```
//! use qram::core::{Memory, QueryArchitecture, VirtualQram};
//!
//! // An 8-cell classical memory, queried through a virtual QRAM with a
//! // physical tree of 4 leaves (m = 2) and 2 pages (k = 1).
//! let memory = Memory::from_bits([true, false, true, true, false, false, true, false]);
//! let query = VirtualQram::new(1, 2).build(&memory);
//!
//! // The compiled circuit implements Σᵢ αᵢ|i⟩|0⟩ → Σᵢ αᵢ|i⟩|xᵢ⟩ …
//! query.verify(&memory)?;
//! // … and a classical query at address 5 (binary 101) reads memory[5].
//! assert_eq!(query.query_classical(5)?, memory.get(5));
//! # Ok::<(), qram::core::QueryError>(())
//! ```

pub use qram_circuit as circuit;
pub use qram_core as core;
pub use qram_fleet as fleet;
pub use qram_layout as layout;
pub use qram_noise as noise;
pub use qram_plan as plan;
pub use qram_qec as qec;
pub use qram_service as service;
pub use qram_sim as sim;
pub use qram_telemetry as telemetry;
pub use qram_verify as verify;
