//! Quickstart: compile a classical memory into a virtual-QRAM query
//! circuit, verify it, and run classical and superposed queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qram::core::{Memory, Optimizations, QueryArchitecture, QueryError, VirtualQram};
use qram::sim::run;

fn main() -> Result<(), QueryError> {
    // A 32-cell classical memory: cell i holds 1 iff i is prime.
    let is_prime = |i: usize| matches!(i, 2 | 3 | 5 | 7 | 11 | 13 | 17 | 19 | 23 | 29 | 31);
    let memory = Memory::from_bits((0..32).map(is_prime));

    // Serve the 32 cells with a physical tree of only 8 leaves (m = 3):
    // the other k = 2 address bits page the memory in 4 segments.
    let qram = VirtualQram::new(2, 3);
    let query = qram.build(&memory);

    println!("architecture : {}", qram.name());
    println!("memory cells : {}", memory.len());
    println!("qubits       : {}", query.num_qubits());
    println!("resources    : {}", query.resources());

    // The circuit implements Eq. 2 of the paper:
    //   Σᵢ αᵢ|i⟩|0⟩ → Σᵢ αᵢ|i⟩|xᵢ⟩
    query.verify(&memory)?;
    println!("verification : Σᵢ αᵢ|i⟩|xᵢ⟩ ✓");

    // Classical queries: read single addresses.
    for address in [2u64, 4, 23, 27] {
        let bit = query.query_classical(address)?;
        println!(
            "memory[{address:2}]   : {} ({})",
            bit as u8,
            if bit { "prime" } else { "composite" }
        );
    }

    // A superposed query over all 32 addresses at once: one circuit
    // execution entangles every address with its data.
    let input = query.input_state(None);
    let mut state = input.clone();
    run(query.circuit().gates(), &mut state).map_err(QueryError::from)?;
    println!(
        "superposition: {} paths, bus ⟨1⟩ probability = {:.4} (= 11 primes / 32)",
        state.num_paths(),
        state.probability_of_one(query.bus())
    );

    // The optimization ablation of Table 1, on this memory.
    println!("\nTable-1 ablation on this memory:");
    println!(
        "{:<8} {:>7} {:>7} {:>9}",
        "variant", "qubits", "depth", "cl-gates"
    );
    for (name, opts) in [
        ("RAW", Optimizations::RAW),
        ("OPT1", Optimizations::OPT1),
        ("OPT2", Optimizations::OPT2),
        ("OPT3", Optimizations::OPT3),
        ("ALL", Optimizations::ALL),
    ] {
        let r = VirtualQram::new(2, 3)
            .with_optimizations(opts)
            .build(&memory)
            .resources();
        println!(
            "{:<8} {:>7} {:>7} {:>9}",
            name, r.num_qubits, r.depth, r.classically_controlled
        );
    }
    Ok(())
}
