//! Grover database loading: the workload that motivates QRAM in the
//! paper's introduction.
//!
//! Grover's algorithm searches an unordered N-cell database in O(√N)
//! *queries* — but each query must load the database coherently, in
//! superposition over all addresses. This example plays the data-loading
//! step: it prepares the uniform superposition, queries a marked-items
//! database through three architectures, and compares what each costs
//! and how much noise each tolerates — including the Regev–Schiff point
//! (cited as [51]) that a faulty oracle erases the quantum speedup.
//!
//! ```sh
//! cargo run --release --example grover_oracle
//! ```

use qram::core::{BucketBrigadeQram, Memory, QueryArchitecture, SelectSwapQram, VirtualQram};
use qram::noise::{FaultSampler, NoiseModel, PauliChannel, BASE_ERROR_RATE};
use qram::sim::{monte_carlo_reduced_fidelity, run};

fn main() {
    // A 64-item database with 3 marked items (the Grover targets).
    let n = 6;
    let marked = [9usize, 33, 57];
    let memory = Memory::from_bits((0..1 << n).map(|i| marked.contains(&i)));

    println!(
        "database      : {} items, {} marked",
        memory.len(),
        marked.len()
    );
    println!("Grover needs  : ~⌈(π/4)·√(N/M)⌉ = 4 oracle queries\n");

    let archs: Vec<Box<dyn QueryArchitecture>> = vec![
        Box::new(VirtualQram::new(2, 4)),
        Box::new(BucketBrigadeQram::new(0, n)),
        Box::new(SelectSwapQram::new(3, 3)),
    ];

    println!(
        "{:<26} {:>7} {:>7} {:>8} {:>8} {:>10}",
        "architecture", "qubits", "depth", "T-count", "gates", "F(ε=1e-3)"
    );
    for arch in &archs {
        let query = arch.build(&memory);
        let r = query.resources();

        // One coherent oracle query: all 64 addresses at once.
        let input = query.input_state(None);
        let mut state = input.clone();
        run(query.circuit().gates(), &mut state).expect("simulable");
        assert!(
            (state.probability_of_one(query.bus()) - marked.len() as f64 / memory.len() as f64)
                .abs()
                < 1e-9,
            "bus must carry the marked-item indicator"
        );

        // How reliable is the oracle on 10⁻³-error hardware?
        let model = NoiseModel::per_gate(PauliChannel::depolarizing(BASE_ERROR_RATE));
        let sampler = FaultSampler::new(query.circuit(), model, 42);
        let est = monte_carlo_reduced_fidelity(
            query.circuit().gates(),
            &input,
            &query.output_qubits(),
            200,
            |shot| sampler.sample_shot(shot),
        )
        .expect("simulable");

        println!(
            "{:<26} {:>7} {:>7} {:>8} {:>8} {:>10.4}",
            arch.name(),
            r.num_qubits,
            r.depth,
            r.t_count,
            r.num_gates,
            est.mean
        );
    }

    println!(
        "\nA Grover run makes √N sequential queries, so the end-to-end success\n\
         probability is ≈ F^√N: at F = 0.95 and N = 64 that is {:.2} — the\n\
         Regev–Schiff caveat: noisy oracles spend the quadratic speedup.",
        0.95f64.powf(8.0)
    );
}
