//! Virtual memory for qubits: serve a 1024-cell address space with a
//! 16-leaf physical QRAM.
//!
//! The paper's Sec. 3.1.3 analogy: like classical virtual memory swaps
//! pages between RAM and disk, virtual QRAM swaps classical memory pages
//! through a small router tree — `k` high address bits select the page
//! (SQC stage), `m` low bits route within it. This example walks the
//! trade-off along the k + m = n line and shows where lazy data swapping
//! (OPT2) earns its keep.
//!
//! ```sh
//! cargo run --release --example virtual_paging
//! ```

use qram::core::{Memory, Optimizations, QueryArchitecture, VirtualQram, VirtualQramModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 10; // 1024 cells
    let memory = Memory::random(n, &mut StdRng::seed_from_u64(7));
    println!(
        "address space : {} cells ({} ones)\n",
        memory.len(),
        memory.count_ones()
    );

    // Walk the design line k + m = 10: from pure gate-based (huge k) to
    // pure router-based (k = 0, needs 4·1024 qubits).
    println!(
        "{:>3} {:>3} {:>8} {:>9} {:>11}",
        "k", "m", "qubits", "depth*", "cl-gates"
    );
    println!("{:->40}", "");
    for m in (2..=n).step_by(2) {
        let k = n - m;
        let model = VirtualQramModel::new(k, m, Optimizations::ALL);
        // Depth formula shape: loading Θ(m) + 2^k pages × Θ(m).
        let depth_shape = format!("~{}·{}", 1 << k, m + 1);
        println!(
            "{k:>3} {m:>3} {:>8} {:>9} {:>11}",
            model.qubits(),
            depth_shape,
            model.classically_controlled(&memory),
        );
    }
    println!("(* depth shape: pages × per-page retrieval, plus Θ(m) loading)\n");

    // Concrete circuit at the sweet spot the paper targets: a physical
    // QRAM of 16 leaves serving all 1024 cells.
    let (k, m) = (6, 4);
    let arch = VirtualQram::new(k, m);
    let query = arch.build(&memory);
    println!("chosen shape  : {}", arch.name());
    println!("circuit       : {}", query.resources());

    // Verify a handful of classical reads against the memory.
    for address in [0u64, 511, 512, 1023] {
        assert_eq!(
            query.query_classical(address).expect("clean query"),
            memory.get(address as usize)
        );
    }
    println!("classical read: addresses 0, 511, 512, 1023 ✓");

    // Lazy swapping earns ~2× on the dominant gate family: page-to-page
    // deltas flip only half the cells in expectation.
    let eager = VirtualQram::new(k, m).with_optimizations(Optimizations {
        lazy_swapping: false,
        ..Optimizations::ALL
    });
    let eager_gates = eager.build(&memory).resources().classically_controlled;
    let lazy_gates = query.resources().classically_controlled;
    println!(
        "lazy swapping : {eager_gates} → {lazy_gates} classically-controlled gates ({:.2}×)",
        eager_gates as f64 / lazy_gates as f64
    );

    // And the pathological best case: pages identical ⇒ deltas vanish.
    let periodic = Memory::from_bits((0..1 << n).map(|i| (i % (1 << m)) % 3 == 0));
    let lazy_periodic = VirtualQram::new(k, m)
        .build(&periodic)
        .resources()
        .classically_controlled;
    let eager_periodic = eager.build(&periodic).resources().classically_controlled;
    println!(
        "periodic data : {eager_periodic} → {lazy_periodic} ({}× — identical pages cost one write)",
        eager_periodic / lazy_periodic.max(1)
    );
}
