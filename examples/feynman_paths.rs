//! The simulator headline (paper Sec. 6.2): Feynman-path simulation keeps
//! memory **constant in circuit depth** and linear in the number of
//! superposed addresses — hundreds of qubits in kilobytes.
//!
//! The paper reports simulating its largest QRAMs in 1.5 MB of RAM where
//! a dense state vector would need 2^190 amplitudes. This example
//! measures the same effect in this repository's engine: path count,
//! approximate working-set bytes, and wall-clock per query across QRAM
//! widths.
//!
//! ```sh
//! cargo run --release --example feynman_paths
//! ```

use qram::core::{Memory, QueryArchitecture, VirtualQram};
use qram::sim::run;
use qram::telemetry::host_wall;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!(
        "{:>3} {:>7} {:>7} {:>7} {:>12} {:>12}",
        "m", "qubits", "gates", "paths", "~state bytes", "query time"
    );
    for m in 1..=9 {
        let memory = Memory::random(m, &mut StdRng::seed_from_u64(m as u64));
        let query = VirtualQram::new(0, m).build(&memory);
        let input = query.input_state(None);

        // Wall-clock is display-only here; route through the audited
        // telemetry gateway so the determinism lint stays clean.
        let start = host_wall();
        let mut state = input.clone();
        run(query.circuit().gates(), &mut state).expect("simulable");
        let elapsed = start.elapsed();

        // One path = one stride of the packed-bit slab + one complex
        // amplitude in the amplitude slab (PathState stores both as
        // flat contiguous arrays, so this is the exact footprint).
        let words_per_path = query.num_qubits().div_ceil(64);
        let bytes = state.num_paths() * (words_per_path * 8 + 16);
        println!(
            "{:>3} {:>7} {:>7} {:>7} {:>12} {:>12?}",
            m,
            query.num_qubits(),
            query.circuit().len(),
            state.num_paths(),
            bytes,
            elapsed
        );

        // The Sec. 6.2 invariant: the path count never grew.
        assert_eq!(state.num_paths(), input.num_paths());
    }

    let m9_qubits = VirtualQram::new(0, 9)
        .build(&Memory::zeroed(9))
        .num_qubits();
    println!(
        "\nA dense state vector for the m = 9 row ({m9_qubits} qubits) would need\n\
         2^{m9_qubits} amplitudes — the path representation uses a few kilobytes,\n\
         because classical-reversible gates map basis states to basis\n\
         states: superposition size is set by the *input*, not the width."
    );
}
