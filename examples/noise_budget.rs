//! How good must hardware get? Reproduce the Appendix A question: sweep
//! the error-reduction factor εr and find where a small virtual QRAM
//! clears useful fidelity thresholds, then compare against the Sec. 5.1
//! analytic floors and the Sec. 5.2 surface-code prescription.
//!
//! ```sh
//! cargo run --release --example noise_budget
//! ```

use qram::core::{Memory, QueryArchitecture, VirtualQram};
use qram::noise::{ErrorReductionFactor, FaultSampler, NoiseModel, PauliChannel, BASE_ERROR_RATE};
use qram::qec::{balanced_code, virtual_z_fidelity_bound, TYPICAL_THRESHOLD};
use qram::sim::monte_carlo_fidelity;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (k, m) = (1, 3);
    let memory = Memory::random(k + m, &mut StdRng::seed_from_u64(11));
    let arch = VirtualQram::new(k, m);
    let query = arch.build(&memory);
    let input = query.input_state(None);
    println!(
        "architecture : {} ({} qubits)",
        arch.name(),
        query.num_qubits()
    );
    println!("noise        : per-gate phase-flip, ε = {BASE_ERROR_RATE}/εr\n");

    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "εr", "ε", "F(sim)", "F(bound)"
    );
    let mut budget_for_098 = None;
    for er in ErrorReductionFactor::sweep(0, 3, 1) {
        let model = NoiseModel::per_gate(PauliChannel::phase_flip(BASE_ERROR_RATE)).reduced_by(er);
        let sampler = FaultSampler::new(query.circuit(), model, 5);
        let est = monte_carlo_fidelity(query.circuit().gates(), &input, 400, |shot| {
            sampler.sample_shot(shot)
        })
        .expect("simulable");
        let bound = virtual_z_fidelity_bound(er.error_rate(), m, k);
        println!(
            "{:>8} {:>10.1e} {:>10.4} {:>10.4}",
            er.0,
            er.error_rate(),
            est.mean,
            bound
        );
        assert!(
            est.mean >= bound - 3.0 * est.std_error - 1e-9,
            "simulation must respect the analytic lower bound"
        );
        if budget_for_098.is_none() && est.mean >= 0.98 {
            budget_for_098 = Some(er.0);
        }
    }
    if let Some(er) = budget_for_098 {
        println!("\n→ εr ≈ {er} reaches F ≥ 0.98 (the paper's App. A headline).");
    }

    // Fault tolerance instead of better hardware: the Sec. 5.2 recipe.
    let p = BASE_ERROR_RATE;
    println!("\nSurface-code route at physical p = {p}:");
    for dz in [3usize, 5, 7] {
        let code = balanced_code(k, m, p, TYPICAL_THRESHOLD, dz);
        let f = virtual_z_fidelity_bound(code.logical_z_rate(p, TYPICAL_THRESHOLD), m, k);
        println!(
            "  {code}: {} physical qubits/patch, F_Z floor = {f:.6}",
            code.physical_qubits()
        );
    }
}
