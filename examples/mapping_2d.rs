//! Putting a QRAM on a chip: H-tree embedding, teleportation routing,
//! and SWAP-routing onto real device topologies (paper Sec. 4 + App. A).
//!
//! ```sh
//! cargo run --release --example mapping_2d
//! ```

use qram::circuit::decompose::lower;
use qram::core::{DataEncoding, Memory, QueryArchitecture, VirtualQram};
use qram::layout::{
    route, route_with_chosen_layout, routing_overhead_sweep, CouplingGraph, HTreeEmbedding,
};
use qram::noise::{ibm_perth, ibmq_guadalupe};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The constructive H-tree embedding (Fig. 6): a capacity-16 QRAM
    //    tree as a topological minor of a 7×7 grid.
    let embedding = HTreeEmbedding::new(4);
    embedding.validate().expect("topological minor invariants");
    println!("{embedding}");
    let census = embedding.role_census();
    println!(
        "roles: {} routers, {} data, {} routing, {} unused ({:.1}% unused)\n",
        census.routers,
        census.data,
        census.routing,
        census.unused,
        100.0 * embedding.unused_fraction()
    );

    // 2. Fig. 8: why teleportation routing matters — swap chains grow
    //    exponentially with the tree, entanglement swapping stays flat.
    println!("{:>3} {:>6} {:>10} {:>10}", "m", "grid", "swap", "teleport");
    for row in routing_overhead_sweep(9) {
        println!(
            "{:>3} {:>6} {:>10} {:>10}",
            row.m,
            format!("{}c", row.grid_cells),
            row.swap_depth,
            row.teleport_depth
        );
    }

    // 3. Appendix A: route small virtual QRAMs onto the IBMQ coupling
    //    maps with the greedy sabre_lite router and report SWAP counts
    //    (the numbers under Fig. 12's legend).
    println!(
        "\n{:<16} {:>3} {:>3} {:>8} {:>10} {:>10}",
        "device", "m", "k", "qubits", "swaps(id)", "swaps(bfs)"
    );
    for (device, m, k) in [
        (ibm_perth(), 1usize, 0usize),
        (ibm_perth(), 1, 1),
        (ibmq_guadalupe(), 2, 0),
        (ibmq_guadalupe(), 2, 1),
    ] {
        let memory = Memory::random(k + m, &mut StdRng::seed_from_u64(2023));
        // Fused data rails: the smallest layout, fits the 7-qubit chip.
        let query = VirtualQram::new(k, m)
            .with_encoding(DataEncoding::FusedBit)
            .build(&memory);
        let lowered = lower(query.circuit());
        let topo = CouplingGraph::new(device.num_qubits(), device.coupling().to_vec());
        match (
            route(&lowered, &topo),
            route_with_chosen_layout(&lowered, &topo),
        ) {
            (Ok(identity), Ok(chosen)) => println!(
                "{:<16} {:>3} {:>3} {:>8} {:>10} {:>10}",
                device.name(),
                m,
                k,
                lowered.num_qubits(),
                identity.swap_count(),
                chosen.swap_count()
            ),
            (Err(e), _) | (_, Err(e)) => {
                println!("{:<16} {:>3} {:>3} does not fit: {e}", device.name(), m, k)
            }
        }
    }
    println!("\n(paper's SABRE counts for the same shapes: 5, 20, 65, 99 — same order)");
}
