//! Offline, API-compatible subset of the published `rand` 0.9 crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub provides exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with [`Rng::random`], [`Rng::random_range`]
//!   and [`Rng::random_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (the
//!   published crate uses ChaCha12; any high-quality deterministic
//!   stream satisfies the workspace's seeded-reproducibility contract).
//!
//! The generator passes the statistical smoke tests in this crate and is
//! *not* cryptographically secure — exactly like the guarantees the
//! workspace relies on (Monte-Carlo sampling and test-data generation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// The core of a random number generator: an endless `u64` stream.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's bit stream
/// (the stub's stand-in for `StandardUniform: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let v = rng.next_u64();
                    if v < zone || zone == 0 {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let draw = (0u64..span as u64).sample_single(rng);
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64);

/// User-facing generator methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard uniform distribution
    /// (`bool`: fair coin; floats: `[0, 1)`; integers: full width).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded through SplitMix64 as recommended by the xoshiro authors so
    /// that small (e.g. sequential) seeds produce well-mixed states.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let ones = (0..n).filter(|_| rng.random::<bool>()).count();
        assert!((ones as f64 / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(10u64..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / n as f64 - 0.25).abs() < 0.02);
    }
}
