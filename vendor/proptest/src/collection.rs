//! Strategies for collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use rand::Rng;

/// A strategy producing `Vec`s whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start < self.size.end {
            rng.rng_mut().random_range(self.size.clone())
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let s = vec(0u32..7, 2..5);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
        }
    }
}
