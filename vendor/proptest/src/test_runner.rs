//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Environment variable capping the number of cases per property.
pub const CASES_ENV: &str = "PROPTEST_CASES";

/// Environment variable seeding the case RNG (default `0`).
pub const SEED_ENV: &str = "PROPTEST_RNG_SEED";

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property (before the env cap).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    ///
    /// Intentional deviation from upstream proptest (which reads env
    /// vars in `Config::default()`, so an explicit `with_cases` wins
    /// there): here the env var *always* replaces the configured count,
    /// so CI can cap suites that pin `with_cases` per test block.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var(CASES_ENV) {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("{CASES_ENV} must be an integer, got `{v}`")),
            Err(_) => self.cases,
        }
    }
}

/// The RNG handed to strategies while generating cases.
///
/// Deterministic: seeded from `PROPTEST_RNG_SEED` (default `0`), so a
/// given binary reruns the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// An RNG seeded from the environment (`PROPTEST_RNG_SEED`, default 0).
    pub fn from_env() -> Self {
        let seed = std::env::var(SEED_ENV)
            .ok()
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{SEED_ENV} must be an integer, got `{v}`"))
            })
            .unwrap_or(0);
        TestRng::from_seed(seed)
    }

    /// An RNG with an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying generator (used by strategy implementations).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..32 {
            assert_eq!(a.rng_mut().random::<u64>(), b.rng_mut().random::<u64>());
        }
    }
}
