//! Offline, API-compatible subset of the published `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub implements the slice of proptest the workspace's
//! property tests use: [`Strategy`] with `prop_map` / `prop_filter`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`],
//! the [`proptest!`] test macro, and
//! [`ProptestConfig`](test_runner::ProptestConfig) with an environment
//! override (`PROPTEST_CASES`) so CI can cap case counts.
//!
//! Differences from upstream, by design:
//!
//! * **Basic shrinking only** — on failure the runner greedily halves
//!   failing inputs toward their minimum ([`Strategy::shrink`]: integer
//!   ranges toward the range start, [`any`] integers toward zero, tuples
//!   one component at a time) and reports the minimized inputs before
//!   re-raising the original assertion panic. Strategies built through
//!   non-invertible closures (`prop_map`, `prop_oneof!`) do not shrink;
//!   upstream's full shrink trees stay out of scope.
//! * **Deterministic by default** — the case RNG is seeded from
//!   `PROPTEST_RNG_SEED` (default `0`) so CI runs are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::ProptestConfig;

/// Picks uniformly among several strategies producing the same value type.
///
/// ```
/// use proptest::prelude::*;
/// use proptest::test_runner::TestRng;
///
/// let s = prop_oneof![0u32..10, 100u32..110];
/// let mut rng = TestRng::from_seed(1);
/// let v = s.generate(&mut rng);
/// assert!((0..10).contains(&v) || (100..110).contains(&v));
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property-based tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` (the attribute is written at the call site and re-emitted)
/// that draws `cases` inputs from the strategies and runs the body on
/// each. An optional `#![proptest_config(expr)]` header sets the
/// [`ProptestConfig`](test_runner::ProptestConfig).
///
/// On failure the runner shrinks the failing inputs (greedy
/// halve-toward-minimum over [`Strategy::shrink`] candidates, each
/// candidate re-tested), prints the minimized inputs to stderr, and
/// re-runs the body on them uncaught so the original assertion panic is
/// what the test harness reports. Argument values must therefore be
/// `Clone + Debug`; strategies are evaluated once per test, so a
/// strategy expression cannot reference an earlier argument.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Type-inference helper for the [`proptest!`] expansion: pins the test
/// body's (destructuring) closure argument to the strategy tuple's value
/// type, so the body type-checks before its first call.
#[doc(hidden)]
pub fn __with_value_type<S, F>(_strategy: &S, body: F) -> F
where
    S: strategy::Strategy,
    F: Fn(S::Value),
{
    body
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_env();
            let __strategy = ($(($strat),)*);
            let __body = $crate::__with_value_type(&__strategy, |($($arg,)*)| { $body });
            let __fails = |__values: &_| {
                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    __body(::std::clone::Clone::clone(__values))
                }))
                .is_err()
            };
            for __case in 0..config.effective_cases() {
                let mut __values =
                    $crate::strategy::Strategy::generate(&__strategy, &mut rng);
                if !__fails(&__values) {
                    continue;
                }
                // Greedy shrinking: keep the first candidate that still
                // fails; stop when every candidate passes (or a safety
                // cap is hit — candidates halve, so ~64 steps per value
                // suffice and the cap is never the binding limit).
                let mut __shrinks = 0usize;
                'shrinking: while __shrinks < 4096 {
                    for __cand in
                        $crate::strategy::Strategy::shrink(&__strategy, &__values)
                    {
                        if __fails(&__cand) {
                            __values = __cand;
                            __shrinks += 1;
                            continue 'shrinking;
                        }
                    }
                    break;
                }
                eprintln!(
                    "proptest: case #{} of `{}` failed; minimized input after {} shrink step(s): {:?}",
                    __case,
                    stringify!($name),
                    __shrinks,
                    __values,
                );
                // Re-run uncaught so the harness reports the original
                // assertion panic, message and all.
                __body(__values);
                unreachable!(
                    "proptest: failing case passed when re-run (non-deterministic test body?)"
                );
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::panic::catch_unwind;
    use std::sync::atomic::{AtomicU64, Ordering};

    static LAST_K: AtomicU64 = AtomicU64::new(u64::MAX);
    static LAST_SEED: AtomicU64 = AtomicU64::new(u64::MAX);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        // Deliberately failing property (no #[test] attribute: invoked
        // manually under catch_unwind below). Records the inputs of the
        // last executed run — which, after shrinking, is the uncaught
        // re-run of the minimized case.
        fn always_fails(k in 3u64..50, seed in any::<u64>()) {
            LAST_K.store(k, Ordering::SeqCst);
            LAST_SEED.store(seed, Ordering::SeqCst);
            panic!("deliberate");
        }

        #[test]
        fn passing_properties_run_every_case_clean(v in 0u32..10, flip in any::<bool>()) {
            prop_assert!(v < 10 || flip);
        }
    }

    #[test]
    fn failing_cases_are_minimized_before_the_final_panic() {
        let err = catch_unwind(always_fails).expect_err("property must fail");
        // The harness re-raises the body's own panic, not a wrapper.
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "deliberate");
        // Both arguments were halved all the way to their minima.
        assert_eq!(LAST_K.load(Ordering::SeqCst), 3);
        assert_eq!(LAST_SEED.load(Ordering::SeqCst), 0);
    }
}
