//! Offline, API-compatible subset of the published `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub implements the slice of proptest the workspace's
//! property tests use: [`Strategy`] with `prop_map` / `prop_filter`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`],
//! the [`proptest!`] test macro, and
//! [`ProptestConfig`](test_runner::ProptestConfig) with an environment
//! override (`PROPTEST_CASES`) so CI can cap case counts.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   (via the values' `Debug` output in the assertion message) but is
//!   not minimized.
//! * **Deterministic by default** — the case RNG is seeded from
//!   `PROPTEST_RNG_SEED` (default `0`) so CI runs are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::ProptestConfig;

/// Picks uniformly among several strategies producing the same value type.
///
/// ```
/// use proptest::prelude::*;
/// use proptest::test_runner::TestRng;
///
/// let s = prop_oneof![0u32..10, 100u32..110];
/// let mut rng = TestRng::from_seed(1);
/// let v = s.generate(&mut rng);
/// assert!((0..10).contains(&v) || (100..110).contains(&v));
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property-based tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` (the attribute is written at the call site and re-emitted)
/// that draws `cases` inputs from the strategies and runs the body on
/// each. An optional `#![proptest_config(expr)]` header sets the
/// [`ProptestConfig`](test_runner::ProptestConfig).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_env();
            for __case in 0..config.effective_cases() {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}
