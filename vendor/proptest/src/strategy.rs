//! Value-generation strategies with basic halve-toward-minimum
//! shrinking (see [`Strategy::shrink`]).

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::Range;
use rand::Rng;

/// How many times `prop_filter` retries before giving up.
const FILTER_MAX_RETRIES: usize = 10_000;

/// A recipe for generating values of one type from the test RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value` — the basic
    /// halve-toward-minimum shrinking of this stub (upstream proptest
    /// builds full shrink trees). The [`proptest!`](crate::proptest)
    /// runner re-tests each candidate and greedily keeps the first one
    /// that still fails, so a strategy only proposes; it never decides.
    ///
    /// The default is no candidates: composite strategies built through
    /// non-invertible closures (`prop_map`, `prop_oneof!`) cannot shrink.
    /// Integer ranges halve toward their minimum, [`any`] integers halve
    /// toward zero, and tuples shrink one component at a time.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh draws.
    ///
    /// `whence` labels the filter in the panic message should the
    /// predicate prove unsatisfiable within a retry budget.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    fn dyn_shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn dyn_shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.0.dyn_shrink(value)
    }
}

/// References delegate — the building block that lets a destructured
/// tuple of `&S` strategies act as a strategy itself (used by the tuple
/// shrink recursion below).
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_MAX_RETRIES} consecutive values",
            self.whence
        )
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Only candidates still satisfying the predicate stay in the
        // strategy's support.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
}

/// See [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds a uniform choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.rng_mut().random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Halve the distance to the range minimum. Unsigned:
                // `value ≥ start`, so the subtraction cannot overflow.
                if *value == self.start {
                    Vec::new()
                } else {
                    vec![self.start + (*value - self.start) / 2]
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Signed spans can exceed the type's domain (e.g.
                // `i64::MIN..i64::MAX`): take the midpoint in i128.
                if *value == self.start {
                    Vec::new()
                } else {
                    let mid = self.start as i128
                        + (*value as i128 - self.start as i128) / 2;
                    vec![mid as $t]
                }
            }
        }
    )*};
}

impl_signed_range_strategy!(i32, i64);

/// The empty strategy tuple: generates `()` and cannot shrink. Base case
/// of the tuple recursion (and of argument-less `proptest!` bodies).
impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
}

/// Tuples generate componentwise and shrink one component at a time:
/// the head's candidates with the tail cloned, then (recursively, via
/// the `&S` delegation) each tail component's candidates with the head
/// cloned.
macro_rules! impl_tuple_strategy {
    ($head:ident $headval:ident $(, $tail:ident $tailval:ident)*) => {
        impl<$head: Strategy $(, $tail: Strategy)*> Strategy for ($head, $($tail,)*)
        where
            $head::Value: Clone,
            $($tail::Value: Clone,)*
        {
            type Value = ($head::Value, $($tail::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($head, $($tail,)*) = self;
                ($head.generate(rng), $($tail.generate(rng),)*)
            }
            #[allow(non_snake_case, unused_variables)]
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let ($head, $($tail,)*) = self;
                let ($headval, $($tailval,)*) = value;
                let mut out = Vec::new();
                for cand in $head.shrink($headval) {
                    out.push((cand, $($tailval.clone(),)*));
                }
                let tail_strategies = ($($tail,)*);
                let tail_value = ($($tailval.clone(),)*);
                for cand in Strategy::shrink(&tail_strategies, &tail_value) {
                    let ($($tailval,)*) = cand;
                    out.push(($headval.clone(), $($tailval,)*));
                }
                out
            }
        }
    };
}

impl_tuple_strategy!(A a);
impl_tuple_strategy!(A a, B b);
impl_tuple_strategy!(A a, B b, C c);
impl_tuple_strategy!(A a, B b, C c, D d);
impl_tuple_strategy!(A a, B b, C c, D d, E e);
impl_tuple_strategy!(A a, B b, C c, D d, E e, F f);
impl_tuple_strategy!(A a, B b, C c, D d, E e, F f, G g);
impl_tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// The canonical one-step simplification of `value`, if any
    /// (integers halve toward zero; the default cannot shrink).
    fn shrink(_value: &Self) -> Option<Self> {
        None
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng_mut().random()
            }
            fn shrink(value: &Self) -> Option<Self> {
                (*value != 0).then(|| value / 2)
            }
        }
    )*};
}

impl_arbitrary_int!(u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random()
    }
    fn shrink(value: &Self) -> Option<Self> {
        // `false` is the canonical simpler boolean.
        value.then_some(false)
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random_range(0u32..256) as u8
    }
    fn shrink(value: &Self) -> Option<Self> {
        (*value != 0).then(|| value / 2)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random()
    }
}

/// The canonical strategy for an [`Arbitrary`] type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_filter_oneof_compose() {
        let s = crate::prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_filter("even", |v| v % 2 == 0),
        ];
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (v < 20 || (100..110).contains(&v)), "v = {v}");
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = (0u32..4, 10usize..12);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..50 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "prop_filter `never`")]
    fn unsatisfiable_filter_panics() {
        let s = (0u32..4).prop_filter("never", |_| false);
        let mut rng = TestRng::from_seed(0);
        let _ = s.generate(&mut rng);
    }

    #[test]
    fn range_shrink_halves_toward_the_range_start() {
        let s = 5u32..100;
        assert!(s.shrink(&5).is_empty());
        assert_eq!(s.shrink(&85), vec![45]);
        // The halving chain converges to the range minimum.
        let mut v = 85;
        let mut steps = 0;
        while let Some(&next) = s.shrink(&v).first() {
            assert!(next < v);
            v = next;
            steps += 1;
            assert!(steps < 64, "halving must converge");
        }
        assert_eq!(v, 5);
    }

    #[test]
    fn signed_range_shrinks_toward_its_minimum() {
        let s = -8i32..8;
        assert_eq!(s.shrink(&4), vec![-2]);
        assert!(s.shrink(&-8).is_empty());
    }

    #[test]
    fn full_domain_signed_range_shrinks_without_overflow() {
        // The span of i64::MIN..i64::MAX exceeds i64: the midpoint must
        // be taken in wider arithmetic.
        let s = i64::MIN..i64::MAX;
        assert_eq!(s.shrink(&(i64::MAX - 1)), vec![-1]);
        let mut v = i64::MAX - 1;
        let mut steps = 0;
        while let Some(&next) = s.shrink(&v).first() {
            v = next;
            steps += 1;
            assert!(steps < 200, "halving must converge");
        }
        assert_eq!(v, i64::MIN);
    }

    #[test]
    fn tuple_shrink_proposes_one_component_at_a_time() {
        let s = (0u32..10, 0u64..10);
        assert_eq!(s.shrink(&(4, 6)), vec![(2, 6), (4, 3)]);
        assert_eq!(s.shrink(&(0, 6)), vec![(0, 3)]);
        assert!(s.shrink(&(0, 0)).is_empty());
        // Deeper arity: every component gets its turn.
        let s3 = (0u32..10, 0u32..10, 0u32..10);
        assert_eq!(s3.shrink(&(2, 2, 2)), vec![(1, 2, 2), (2, 1, 2), (2, 2, 1)]);
    }

    #[test]
    fn filter_shrink_keeps_only_candidates_satisfying_the_predicate() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        assert_eq!(s.shrink(&88), vec![44]);
        // 6 halves to 3, which is odd: rejected, no candidates.
        assert!(s.shrink(&6).is_empty());
    }

    #[test]
    fn any_integers_shrink_toward_zero_and_bools_toward_false() {
        assert_eq!(any::<u64>().shrink(&9), vec![4]);
        assert!(any::<u64>().shrink(&0).is_empty());
        assert_eq!(any::<u8>().shrink(&255), vec![127]);
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert!(any::<bool>().shrink(&false).is_empty());
        assert!(any::<f64>().shrink(&1.5).is_empty());
    }

    #[test]
    fn mapped_and_boxed_strategies_shrink_consistently() {
        // prop_map cannot invert its closure: no candidates.
        assert!((0u32..10).prop_map(|v| v * 2).shrink(&8).is_empty());
        // Boxing delegates to the inner strategy.
        assert_eq!((0u32..100).boxed().shrink(&64), vec![32]);
    }
}
