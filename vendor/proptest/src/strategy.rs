//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::Range;
use rand::Rng;

/// How many times `prop_filter` retries before giving up.
const FILTER_MAX_RETRIES: usize = 10_000;

/// A recipe for generating values of one type from the test RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh draws.
    ///
    /// `whence` labels the filter in the panic message should the
    /// predicate prove unsatisfiable within a retry budget.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_MAX_RETRIES} consecutive values",
            self.whence
        )
    }
}

/// See [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds a uniform choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.rng_mut().random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng_mut().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random_range(0u32..256) as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng_mut().random()
    }
}

/// The canonical strategy for an [`Arbitrary`] type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_filter_oneof_compose() {
        let s = crate::prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_filter("even", |v| v % 2 == 0),
        ];
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (v < 20 || (100..110).contains(&v)), "v = {v}");
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = (0u32..4, 10usize..12);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..50 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    #[should_panic(expected = "prop_filter `never`")]
    fn unsatisfiable_filter_panics() {
        let s = (0u32..4).prop_filter("never", |_| false);
        let mut rng = TestRng::from_seed(0);
        let _ = s.generate(&mut rng);
    }
}
