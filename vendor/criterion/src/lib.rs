//! Offline, API-compatible subset of the published `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub provides the benchmarking surface the workspace uses
//! ([`Criterion`], benchmark groups, [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`]) with a simple wall-clock
//! harness: each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window, and the mean time per
//! iteration is printed.
//!
//! Statistical analysis, plots and regression detection are out of
//! scope; the numbers are indicative, and the primary value is that
//! `cargo bench` compiles and exercises every hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Warm-up time before measurement starts.
const WARM_UP: Duration = Duration::from_millis(50);
/// Target measurement window per benchmark.
const MEASURE: Duration = Duration::from_millis(200);

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&label, &mut g);
        self
    }

    /// Ends the group (upstream finalizes reports here; the stub only
    /// keeps the call site compatible).
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times a routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this measurement batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    // Warm-up: also calibrates how many iterations fill the window.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < WARM_UP {
        f(&mut b);
        warm_iters += b.iterations;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let iterations = ((MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_secs_f64() * 1e9 / iterations as f64;
    println!("{label:<50} {mean_ns:>12.1} ns/iter  ({iterations} iters)");
}

/// Bundles benchmark functions into a group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the
            // stub has no filtering so they are intentionally ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_is_chainable() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
