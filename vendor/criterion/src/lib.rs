//! Offline, API-compatible subset of the published `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub provides the benchmarking surface the workspace uses
//! ([`Criterion`], benchmark groups, [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`]) with a simple wall-clock
//! harness: each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window, and the mean time per
//! iteration is printed.
//!
//! Beyond the console report, every benchmark writes a machine-readable
//! result to `<target>/bench/<sanitized-name>.json` (fields `name`,
//! `mean_ns`, `iters`), where `<target>` is `$CARGO_TARGET_DIR` or the
//! `target/` directory next to the enclosing workspace's `Cargo.lock`.
//! Baselines mirror upstream's flags:
//!
//! * `--save-baseline <name>` additionally copies each result to
//!   `<target>/bench/baselines/<name>/`;
//! * `--baseline <name>` compares each run against that saved baseline
//!   and prints the % delta next to the mean.
//!
//! Other harness flags (e.g. the `--bench` cargo passes) are ignored.
//! Statistical analysis, plots and automatic regression *detection* stay
//! out of scope — regression gating is done by consumers of the JSON
//! (see `qram-bench`'s `bench_report` binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Warm-up time before measurement starts.
const WARM_UP: Duration = Duration::from_millis(50);
/// Target measurement window per benchmark.
const MEASURE: Duration = Duration::from_millis(200);

/// Baseline-related options parsed from the harness command line.
#[derive(Debug, Default, Clone)]
struct Config {
    save_baseline: Option<String>,
    baseline: Option<String>,
}

impl Config {
    /// Parses `--save-baseline <name>` / `--baseline <name>`, ignoring
    /// every other flag (cargo passes e.g. `--bench`).
    fn from_args(mut args: impl Iterator<Item = String>) -> Config {
        let mut config = Config::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--save-baseline" => config.save_baseline = args.next(),
                "--baseline" => config.baseline = args.next(),
                _ => {}
            }
        }
        config
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// A harness configured from the process command line
    /// (`--save-baseline` / `--baseline`; unknown flags ignored).
    pub fn from_process_args() -> Criterion {
        Criterion {
            config: Config::from_args(std::env::args().skip(1)),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f, &self.config);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f, &self.parent.config);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&label, &mut g, &self.parent.config);
        self
    }

    /// Ends the group (upstream finalizes reports here; the stub only
    /// keeps the call site compatible).
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times a routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this measurement batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's measured result.
#[derive(Debug, Clone, PartialEq)]
struct Measurement {
    name: String,
    mean_ns: f64,
    iters: u64,
}

impl Measurement {
    /// The machine-readable form written to `<target>/bench/`.
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"mean_ns\":{:.3},\"iters\":{}}}\n",
            self.name.replace('\\', "\\\\").replace('"', "\\\""),
            self.mean_ns,
            self.iters
        )
    }
}

/// Makes a benchmark label safe as a file stem.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The JSON output directory: `<target>/bench`, where `<target>` is
/// `$CARGO_TARGET_DIR` or the `target/` next to the enclosing workspace's
/// `Cargo.lock` (cargo runs bench binaries from the package directory,
/// which for workspace members is *not* where `target/` lives).
fn bench_output_dir() -> Option<PathBuf> {
    let target = if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        PathBuf::from(dir)
    } else {
        let mut dir = std::env::current_dir().ok()?;
        loop {
            if dir.join("Cargo.lock").exists() {
                break dir.join("target");
            }
            if !dir.pop() {
                return None;
            }
        }
    };
    Some(target.join("bench"))
}

/// Extracts the `mean_ns` field from a result JSON written by
/// [`Measurement::to_json`] (no full JSON parser needed for the stub's
/// own fixed format).
fn parse_mean_ns(json: &str) -> Option<f64> {
    let key = "\"mean_ns\":";
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Persists a measurement and returns the baseline delta report, if any.
/// All IO is best-effort: a benchmark never fails because a JSON file
/// could not be written.
fn record(measurement: &Measurement, config: &Config) -> Option<String> {
    let dir = bench_output_dir()?;
    let file = format!("{}.json", sanitize(&measurement.name));
    let json = measurement.to_json();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(&file), &json);
    }
    if let Some(name) = &config.save_baseline {
        let base_dir = dir.join("baselines").join(sanitize(name));
        if std::fs::create_dir_all(&base_dir).is_ok() {
            let _ = std::fs::write(base_dir.join(&file), &json);
        }
    }
    let baseline = config.baseline.as_ref()?;
    let path = dir.join("baselines").join(sanitize(baseline)).join(&file);
    match std::fs::read_to_string(&path)
        .ok()
        .as_deref()
        .and_then(parse_mean_ns)
    {
        Some(base_ns) if base_ns > 0.0 => {
            let delta = (measurement.mean_ns - base_ns) / base_ns * 100.0;
            Some(format!("{delta:+7.1}% vs '{baseline}'"))
        }
        _ => Some(format!("no baseline '{baseline}'")),
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F, config: &Config) {
    // Warm-up: also calibrates how many iterations fill the window.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < WARM_UP {
        f(&mut b);
        warm_iters += b.iterations;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let iterations = ((MEASURE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_secs_f64() * 1e9 / iterations as f64;
    let measurement = Measurement {
        name: label.to_string(),
        mean_ns,
        iters: iterations,
    };
    // Unit tests of the stub itself skip IO so `cargo test` leaves no
    // stray result files behind.
    let delta = if cfg!(test) {
        None
    } else {
        record(&measurement, config)
    };
    match delta {
        Some(delta) => {
            println!("{label:<50} {mean_ns:>12.1} ns/iter  ({iterations} iters)  {delta}")
        }
        None => println!("{label:<50} {mean_ns:>12.1} ns/iter  ({iterations} iters)"),
    }
}

/// Bundles benchmark functions into a group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_process_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_is_chainable() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn config_parses_baseline_flags_and_ignores_noise() {
        let args = ["--bench", "--save-baseline", "main", "--baseline", "prev"];
        let config = Config::from_args(args.iter().map(|s| s.to_string()));
        assert_eq!(config.save_baseline.as_deref(), Some("main"));
        assert_eq!(config.baseline.as_deref(), Some("prev"));

        let none = Config::from_args(["--bench"].iter().map(|s| s.to_string()));
        assert!(none.save_baseline.is_none() && none.baseline.is_none());
    }

    #[test]
    fn sanitize_keeps_path_chars_out() {
        assert_eq!(sanitize("group/bench m=4"), "group_bench_m_4");
        assert_eq!(sanitize("simple-name_1.2"), "simple-name_1.2");
    }

    #[test]
    fn measurement_json_roundtrips_mean() {
        let m = Measurement {
            name: "shot_engine/serial".into(),
            mean_ns: 1234.5,
            iters: 42,
        };
        let json = m.to_json();
        assert!(json.contains("\"name\":\"shot_engine/serial\""));
        assert!(json.contains("\"iters\":42"));
        assert_eq!(parse_mean_ns(&json), Some(1234.5));
    }

    #[test]
    fn parse_mean_handles_scientific_and_missing() {
        assert_eq!(parse_mean_ns("{\"mean_ns\":1.5e3}"), Some(1500.0));
        assert_eq!(parse_mean_ns("{\"iters\":3}"), None);
    }
}
